"""Glushkov position automata for DTD content models.

The paper builds the DTD-automaton from Glushkov automata because every
transition entering a Glushkov state carries the same label (*homogeneity*,
Section IV), which is what later allows a unique action to be attached to
every runtime state.

For a content model (a regular expression over element names) the Glushkov
construction assigns one *position* to every name occurrence and computes

* ``nullable`` - whether the expression matches the empty word,
* ``first``    - positions that can start a match,
* ``last``     - positions that can end a match,
* ``follow``   - for each position, the positions that may follow it.

These four pieces fully describe the position automaton; the document-level
DTD-automaton (:mod:`repro.dtd.automaton`) instantiates a pair of opening /
closing states per position.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dtd.ast import (
    ChoiceNode,
    ContentNode,
    EmptyNode,
    NameNode,
    PcdataNode,
    RepeatKind,
    RepeatNode,
    SequenceNode,
)


@dataclass
class GlushkovAutomaton:
    """The position automaton of one content model.

    Attributes
    ----------
    positions:
        Position index -> element name.
    nullable:
        True if the content model accepts the empty sequence of children.
    first:
        Positions that may appear as the first child.
    last:
        Positions that may appear as the last child.
    follow:
        Position -> positions that may immediately follow it.
    """

    positions: dict[int, str] = field(default_factory=dict)
    nullable: bool = True
    first: set[int] = field(default_factory=set)
    last: set[int] = field(default_factory=set)
    follow: dict[int, set[int]] = field(default_factory=dict)

    def names(self) -> set[str]:
        """The set of element names occurring in the content model."""
        return set(self.positions.values())

    def name_of(self, position: int) -> str:
        """Element name at ``position``."""
        return self.positions[position]


def assign_positions(model: ContentNode, start: int = 0) -> int:
    """Assign consecutive position indices to the name leaves of ``model``.

    Returns the next free index.  Positions are stored on the
    :class:`~repro.dtd.ast.NameNode` instances themselves.
    """
    index = start
    for leaf in model.iter_names():
        leaf.position = index
        index += 1
    return index


def build_glushkov(model: ContentNode) -> GlushkovAutomaton:
    """Construct the Glushkov automaton of ``model``."""
    assign_positions(model)
    automaton = GlushkovAutomaton()
    for leaf in model.iter_names():
        assert leaf.position is not None
        automaton.positions[leaf.position] = leaf.name
        automaton.follow.setdefault(leaf.position, set())
    nullable, first, last = _analyse(model, automaton)
    automaton.nullable = nullable
    automaton.first = first
    automaton.last = last
    return automaton


def _analyse(node: ContentNode, automaton: GlushkovAutomaton) -> tuple[bool, set[int], set[int]]:
    """Return (nullable, first, last) of ``node`` and fill ``automaton.follow``."""
    if isinstance(node, (PcdataNode, EmptyNode)):
        return True, set(), set()
    if isinstance(node, NameNode):
        assert node.position is not None
        return False, {node.position}, {node.position}
    if isinstance(node, SequenceNode):
        nullable = True
        first: set[int] = set()
        last: set[int] = set()
        previous_last: set[int] = set()
        for item in node.items:
            item_nullable, item_first, item_last = _analyse(item, automaton)
            # follow: every last position of the prefix can be followed by
            # every first position of this item.
            for position in previous_last:
                automaton.follow[position].update(item_first)
            if nullable:
                first.update(item_first)
            if item_nullable:
                previous_last = previous_last | item_last
            else:
                previous_last = set(item_last)
            nullable = nullable and item_nullable
            last = previous_last
        return nullable, first, set(last)
    if isinstance(node, ChoiceNode):
        nullable = False
        first = set()
        last = set()
        for item in node.items:
            item_nullable, item_first, item_last = _analyse(item, automaton)
            nullable = nullable or item_nullable
            first.update(item_first)
            last.update(item_last)
        return nullable, first, last
    if isinstance(node, RepeatNode):
        item_nullable, item_first, item_last = _analyse(node.item, automaton)
        if node.kind is RepeatKind.OPTIONAL:
            return True, item_first, item_last
        # STAR and PLUS allow repetition: last positions feed back to firsts.
        for position in item_last:
            automaton.follow[position].update(item_first)
        if node.kind is RepeatKind.STAR:
            return True, item_first, item_last
        return item_nullable, item_first, item_last
    raise TypeError(f"unsupported content node {node!r}")


def minimal_child_sequence(
    model: ContentNode, element_min_length: dict[str, int]
) -> int:
    """Minimal serialized length of a child sequence accepted by ``model``.

    ``element_min_length`` maps an element name to the minimal number of
    characters a complete instance of that element occupies.  The result is
    the cheapest way to satisfy the content model, which is what the
    initial-jump offsets of Table J are derived from (Example 1 and
    Example 3 of the paper).
    """
    if isinstance(node := model, (PcdataNode, EmptyNode)):
        return 0
    if isinstance(node, NameNode):
        return element_min_length.get(node.name, 0)
    if isinstance(node, SequenceNode):
        return sum(minimal_child_sequence(item, element_min_length) for item in node.items)
    if isinstance(node, ChoiceNode):
        return min(minimal_child_sequence(item, element_min_length) for item in node.items)
    if isinstance(node, RepeatNode):
        if node.kind in (RepeatKind.STAR, RepeatKind.OPTIONAL):
            return 0
        return minimal_child_sequence(node.item, element_min_length)
    raise TypeError(f"unsupported content node {model!r}")
