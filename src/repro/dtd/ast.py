"""Abstract syntax for DTD content models and attribute declarations.

A DTD element declaration ``<!ELEMENT a (b, (c | d)*, e?)>`` is represented
as a tree of :class:`ContentNode` subclasses.  The SMP static analysis needs
three things from a content model: the set of child element names it can
produce, whether it can produce the empty sequence (nullability), and the
Glushkov position automaton (see :mod:`repro.dtd.glushkov`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator


class ContentKind(enum.Enum):
    """Top-level classification of an element's declared content."""

    EMPTY = "EMPTY"
    ANY = "ANY"
    PCDATA = "PCDATA"          # (#PCDATA)
    MIXED = "MIXED"            # (#PCDATA | a | b)*
    CHILDREN = "CHILDREN"      # regular expression over element names


class ContentNode:
    """Base class for content-model expression nodes."""

    def child_names(self) -> set[str]:
        """All element names that occur in this expression."""
        return {leaf.name for leaf in self.iter_names()}

    def iter_names(self) -> Iterator["NameNode"]:
        """Yield the :class:`NameNode` leaves in left-to-right order."""
        raise NotImplementedError

    def is_nullable(self) -> bool:
        """True if the expression matches the empty sequence."""
        raise NotImplementedError


@dataclass
class NameNode(ContentNode):
    """A reference to a child element, e.g. ``b`` in ``(b, c)``."""

    name: str
    #: Glushkov position index, assigned by :func:`repro.dtd.glushkov.assign_positions`.
    position: int | None = field(default=None, compare=False)

    def iter_names(self) -> Iterator["NameNode"]:
        yield self

    def is_nullable(self) -> bool:
        return False

    def __str__(self) -> str:
        return self.name


@dataclass
class PcdataNode(ContentNode):
    """The ``#PCDATA`` leaf.  Matches the empty sequence of child elements."""

    def iter_names(self) -> Iterator[NameNode]:
        return iter(())

    def is_nullable(self) -> bool:
        return True

    def __str__(self) -> str:
        return "#PCDATA"


@dataclass
class EmptyNode(ContentNode):
    """Declared-EMPTY content."""

    def iter_names(self) -> Iterator[NameNode]:
        return iter(())

    def is_nullable(self) -> bool:
        return True

    def __str__(self) -> str:
        return "EMPTY"


@dataclass
class SequenceNode(ContentNode):
    """A sequence ``(a, b, c)``."""

    items: list[ContentNode]

    def iter_names(self) -> Iterator[NameNode]:
        for item in self.items:
            yield from item.iter_names()

    def is_nullable(self) -> bool:
        return all(item.is_nullable() for item in self.items)

    def __str__(self) -> str:
        return "(" + ",".join(str(item) for item in self.items) + ")"


@dataclass
class ChoiceNode(ContentNode):
    """A choice ``(a | b | c)``."""

    items: list[ContentNode]

    def iter_names(self) -> Iterator[NameNode]:
        for item in self.items:
            yield from item.iter_names()

    def is_nullable(self) -> bool:
        return any(item.is_nullable() for item in self.items)

    def __str__(self) -> str:
        return "(" + "|".join(str(item) for item in self.items) + ")"


class RepeatKind(enum.Enum):
    """Occurrence indicators of a DTD content particle."""

    STAR = "*"
    PLUS = "+"
    OPTIONAL = "?"


@dataclass
class RepeatNode(ContentNode):
    """A repetition ``a*``, ``a+`` or ``a?``."""

    item: ContentNode
    kind: RepeatKind

    def iter_names(self) -> Iterator[NameNode]:
        yield from self.item.iter_names()

    def is_nullable(self) -> bool:
        if self.kind in (RepeatKind.STAR, RepeatKind.OPTIONAL):
            return True
        return self.item.is_nullable()

    def __str__(self) -> str:
        return f"{self.item}{self.kind.value}"


class AttributeDefault(enum.Enum):
    """Default kind of an attribute declaration."""

    REQUIRED = "#REQUIRED"
    IMPLIED = "#IMPLIED"
    FIXED = "#FIXED"
    DEFAULT = "default"


@dataclass(frozen=True)
class AttributeDecl:
    """One attribute declaration from an ``<!ATTLIST ...>``.

    Only the pieces the SMP static analysis uses are retained: the attribute
    name, its type string, whether it is required (required attributes
    contribute to initial-jump offsets, Section IV "required attributes may
    be factored in"), and an optional default value.
    """

    name: str
    attribute_type: str
    default: AttributeDefault
    default_value: str | None = None

    @property
    def is_required(self) -> bool:
        """True for ``#REQUIRED`` attributes."""
        return self.default is AttributeDefault.REQUIRED

    def minimal_serialized_length(self) -> int:
        """Minimal characters this attribute adds to an opening tag.

        A required attribute must be present; its shortest serialization is
        `` name=""`` which takes ``len(name) + 4`` characters.  Non-required
        attributes may be omitted and contribute nothing.
        """
        if not self.is_required:
            return 0
        return len(self.name) + 4


@dataclass
class ElementDecl:
    """An ``<!ELEMENT ...>`` declaration plus its attribute list."""

    name: str
    kind: ContentKind
    content: ContentNode
    attributes: list[AttributeDecl] = field(default_factory=list)

    @property
    def required_attributes(self) -> list[AttributeDecl]:
        """The attributes that must be present on every instance."""
        return [attribute for attribute in self.attributes if attribute.is_required]

    def child_names(self) -> set[str]:
        """Element names that may occur as children."""
        return self.content.child_names()

    def allows_text(self) -> bool:
        """True if character data may occur directly inside this element."""
        return self.kind in (ContentKind.PCDATA, ContentKind.MIXED, ContentKind.ANY)

    def allows_children(self) -> bool:
        """True if child elements may occur."""
        if self.kind in (ContentKind.CHILDREN, ContentKind.MIXED, ContentKind.ANY):
            return True
        return False

    def required_attribute_length(self) -> int:
        """Total minimal serialized length of the required attributes."""
        return sum(attribute.minimal_serialized_length() for attribute in self.attributes)
