"""The runtime lookup tables A, V, J and T (Figure 3 of the paper).

The tables are plain dictionaries keyed by runtime-automaton state ids:

* ``A`` -- transition table: state x token symbol -> next state,
* ``V`` -- frontier vocabulary: the search keywords (``"<tag"`` / ``"</tag"``)
  for the tokens on which a transition is defined,
* ``J`` -- initial jump offsets: characters that can be skipped unseen when
  entering the state,
* ``T`` -- actions: ``nop``, ``copy tag [+ atts]`` or ``copy on``/``copy off``.

All four are "statically precompiled" exactly as in the paper; the runtime
algorithm does nothing but dictionary lookups and string searches.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping

from repro.dtd.automaton import CLOSE, OPEN, Symbol
from repro.core.static_analysis import AnalysisResult, RuntimeAutomaton


class Action(enum.Enum):
    """The per-state actions of table T (Figure 3)."""

    NOP = "nop"
    COPY_TAG = "copy tag"
    COPY_ON = "copy on"
    COPY_OFF = "copy off"


def keyword_for(symbol: Symbol) -> str:
    """The search keyword of a token symbol.

    Tags may contain whitespace or attributes, so the keyword excludes the
    trailing bracket: ``("open", "item") -> "<item"`` and
    ``("close", "item") -> "</item"`` (Section II, table V discussion).
    """
    kind, tag = symbol
    return f"<{tag}" if kind == OPEN else f"</{tag}"


@dataclass
class RuntimeTables:
    """The compiled lookup tables plus the automaton they refer to."""

    automaton: RuntimeAutomaton
    transition: dict[int, dict[Symbol, int]]
    vocabulary: dict[int, tuple[str, ...]]
    #: Keyword -> symbol per state (inverse of :func:`keyword_for`).
    keyword_symbols: dict[int, dict[str, Symbol]]
    jumps: dict[int, int]
    actions: dict[int, Action]
    #: Tag names that are proper prefixes of other tag names (the
    #: Abstract / AbstractText special case); used by the runtime's
    #: end-of-tag verification.
    prefix_tags: frozenset[str] = field(default_factory=frozenset)
    #: UTF-8 mirrors of ``vocabulary`` / ``keyword_symbols`` for the
    #: byte-native runtime (tag keywords are ASCII, so the encode is a
    #: bijection); built lazily on first access and cached.
    _vocabulary_bytes: dict[int, tuple[bytes, ...]] | None = field(
        default=None, repr=False, compare=False
    )
    _keyword_symbols_bytes: dict[int, dict[bytes, Symbol]] | None = field(
        default=None, repr=False, compare=False
    )

    # ------------------------------------------------------------------
    # Convenience accessors (named after the paper's tables)
    # ------------------------------------------------------------------
    def A(self, state: int, symbol: Symbol) -> int | None:  # noqa: N802 - paper name
        """Transition table lookup."""
        return self.transition.get(state, {}).get(symbol)

    def V(self, state: int) -> tuple[str, ...]:  # noqa: N802 - paper name
        """Frontier vocabulary of ``state``."""
        return self.vocabulary.get(state, ())

    def J(self, state: int) -> int:  # noqa: N802 - paper name
        """Initial jump offset of ``state``."""
        return self.jumps.get(state, 0)

    def T(self, state: int) -> Action:  # noqa: N802 - paper name
        """Action of ``state``."""
        return self.actions.get(state, Action.NOP)

    # ------------------------------------------------------------------
    # Byte-native mirrors
    # ------------------------------------------------------------------
    def _ensure_byte_tables(self) -> None:
        if self._vocabulary_bytes is None:
            # Concurrent sessions share one tables object: build both dicts
            # fully, publish the guard field (_vocabulary_bytes) last, so a
            # racing reader never observes a half-initialised pair.
            keyword_symbols = {
                state: {
                    keyword.encode("utf-8"): symbol
                    for keyword, symbol in symbols.items()
                }
                for state, symbols in self.keyword_symbols.items()
            }
            vocabulary = {
                state: tuple(keyword.encode("utf-8") for keyword in keywords)
                for state, keywords in self.vocabulary.items()
            }
            self._keyword_symbols_bytes = keyword_symbols
            self._vocabulary_bytes = vocabulary

    @property
    def vocabulary_bytes(self) -> dict[int, tuple[bytes, ...]]:
        """Frontier vocabularies as UTF-8 keywords (byte-native runtime)."""
        self._ensure_byte_tables()
        return self._vocabulary_bytes

    @property
    def keyword_symbols_bytes(self) -> dict[int, dict[bytes, Symbol]]:
        """``keyword_symbols`` keyed by UTF-8 keywords (byte-native runtime)."""
        self._ensure_byte_tables()
        return self._keyword_symbols_bytes

    @property
    def initial_state(self) -> int:
        """The initial runtime state (q0)."""
        return self.automaton.initial

    def is_final(self, state: int) -> bool:
        """True when ``state`` is accepting."""
        return self.automaton.state(state).is_final

    def state_count(self) -> int:
        """Number of runtime states."""
        return self.automaton.state_count()

    def multi_keyword_states(self) -> list[int]:
        """States whose frontier vocabulary needs Commentz-Walter (|V| > 1)."""
        return [state for state, vocab in self.vocabulary.items() if len(vocab) > 1]

    def single_keyword_states(self) -> list[int]:
        """States whose frontier vocabulary needs Boyer-Moore (|V| == 1)."""
        return [state for state, vocab in self.vocabulary.items() if len(vocab) == 1]

    def describe(self) -> str:
        """Human-readable dump of the tables (used by examples and docs)."""
        lines: list[str] = []
        for state in self.automaton.states:
            symbol = state.symbol
            label = "q0" if symbol is None else keyword_for(symbol) + ">"
            lines.append(
                f"state {state.state_id:>3} [{label:>16}] "
                f"action={self.T(state.state_id).value:<9} "
                f"J={self.J(state.state_id):<4} "
                f"V={list(self.V(state.state_id))}"
            )
        return "\n".join(lines)


def build_tables(analysis: AnalysisResult) -> RuntimeTables:
    """Compile the lookup tables from a finished static analysis."""
    runtime = analysis.runtime
    transition: dict[int, dict[Symbol, int]] = {}
    vocabulary: dict[int, tuple[str, ...]] = {}
    keyword_symbols: dict[int, dict[str, Symbol]] = {}
    actions: dict[int, Action] = {}

    for state in runtime.states:
        outgoing = runtime.successors(state.state_id)
        transition[state.state_id] = dict(outgoing)
        keywords: dict[str, Symbol] = {}
        for symbol in outgoing:
            keywords[keyword_for(symbol)] = symbol
        # Deterministic ordering keeps matcher construction reproducible.
        ordered = tuple(sorted(keywords))
        vocabulary[state.state_id] = ordered
        keyword_symbols[state.state_id] = keywords
        actions[state.state_id] = _action_for_state(analysis, state.state_id)

    prefix_tags = frozenset(short for short, _ in analysis.dtd.prefix_pairs())
    return RuntimeTables(
        automaton=runtime,
        transition=transition,
        vocabulary=vocabulary,
        keyword_symbols=keyword_symbols,
        jumps=dict(analysis.initial_jumps),
        actions=actions,
        prefix_tags=prefix_tags,
    )


def _action_for_state(analysis: AnalysisResult, state_id: int) -> Action:
    """Derive the table-T action of a runtime state.

    The runtime automaton is homogeneous, so the state corresponds to reading
    one specific opening or closing tag.  Among the constituent DTD-automaton
    states the most-preserving action wins (copy on/off > copy tag > nop),
    which is always safe: it can only keep more data than strictly required.
    """
    runtime_state = analysis.runtime.state(state_id)
    symbol = runtime_state.symbol
    if symbol is None:
        return Action.NOP
    kind, _tag = symbol
    best = Action.NOP
    for nfa_state in runtime_state.nfa_states:
        if nfa_state == analysis.automaton.initial_state:
            continue
        if analysis.keeps_subtree.get(nfa_state, False):
            return Action.COPY_ON if kind == OPEN else Action.COPY_OFF
        if analysis.relevant.get(nfa_state, False):
            best = Action.COPY_TAG
    return best


def summarize_states(tables: RuntimeTables) -> Mapping[str, int]:
    """Counts for the ``States (CW+BM)`` column of Table I / Table II."""
    return {
        "states": tables.state_count(),
        "cw": len(tables.multi_keyword_states()),
        "bm": len(tables.single_keyword_states()),
    }
