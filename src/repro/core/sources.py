"""Byte-oriented input subsystem of the streaming SMP runtime.

The paper reduces XML prefiltering to raw string matching, so the matcher
automata can run directly on the wire/disk representation: UTF-8 bytes.
This module provides the byte sources that feed the byte-native runtime
without ever paying the ``bytes -> str`` decode-and-copy (the user-facing
wrapper with uniform chunk-size/alignment options and resource-safe open
contexts is :class:`repro.api.Source`, built on these generators):

* :func:`file_chunks` -- buffered binary reads of ``chunk_size`` pieces;
* :func:`mmap_chunks` / :func:`open_mmap` -- memory-mapped files: with
  ``chunk_size=None`` the *whole map* becomes the runtime's search buffer
  (searches run against the mapped pages; only output slices materialise);
* :func:`stdin_chunks` -- the process's binary stdin;
* :func:`socket_chunks` -- anything with ``recv`` (sockets, socket-likes);
* :func:`iter_byte_chunks` -- the uniform dispatcher over all byte shapes.

Incremental UTF-8 handling
--------------------------
Byte chunk boundaries fall anywhere, including inside a multi-byte UTF-8
sequence.  The byte-native matchers do not care -- tag keywords are ASCII
and a UTF-8 continuation byte can never start one -- but any place that
*decodes* must respect code-point boundaries:

* :class:`Utf8ChunkAligner` re-aligns a byte-chunk stream so every emitted
  chunk ends on a code-point boundary (it carries the trailing partial
  sequence into the next chunk).  Used to feed ``str`` consumers (the
  incremental tokenizer) from byte sources without ever splitting a
  character.
* :class:`Utf8SlidingDecoder` wraps an incremental UTF-8 decoder for the
  *output* side: the filter runtimes emit raw byte slices of the document,
  and the text-mode API decodes exactly those emitted slices -- the only
  bytes that are ever decoded on the byte path.

Both are thin, allocation-light wrappers; :func:`utf8_boundary` is the
underlying pure function (the longest prefix that is a whole number of
UTF-8 sequences).
"""

from __future__ import annotations

import codecs
import errno
import sys
import time
from dataclasses import dataclass
from typing import IO, Iterable, Iterator

from repro import faults
from repro.core.stream import DEFAULT_CHUNK_SIZE
from repro.errors import SourceError

try:  # pragma: no cover - mmap exists on all supported platforms
    import mmap as _mmap
except ImportError:  # pragma: no cover
    _mmap = None  # type: ignore[assignment]


def have_mmap() -> bool:
    """True when the platform provides :mod:`mmap`."""
    return _mmap is not None


# ----------------------------------------------------------------------
# Transient-I/O retry
# ----------------------------------------------------------------------
#: errno values that describe transient conditions a retry can clear.
TRANSIENT_ERRNOS = frozenset({
    errno.EINTR,
    errno.EAGAIN,
    errno.EWOULDBLOCK,
    errno.ECONNRESET,
    errno.ECONNABORTED,
    errno.ENETRESET,
    errno.ETIMEDOUT,
    errno.EPIPE,
})


def is_transient(error: BaseException) -> bool:
    """True when ``error`` is worth retrying (interrupt/reset/timeout class)."""
    if isinstance(error, SourceError):
        return error.transient
    if isinstance(error, (InterruptedError, ConnectionResetError,
                          ConnectionAbortedError, TimeoutError)):
        return True
    if isinstance(error, OSError):
        return error.errno in TRANSIENT_ERRNOS
    return False


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff for transient failures.

    Used in two places: byte sources retry individual transient reads
    (``EINTR``/``ECONNRESET``/timeouts -- see :data:`TRANSIENT_ERRNOS`)
    in place, and the parallel corpus engine resubmits a document whose
    worker died or whose error was transient.  The policy is deliberately
    deterministic (no jitter): attempt ``n`` (1-based) sleeps
    ``min(backoff * multiplier**(n-1), max_backoff)`` seconds, and at most
    ``retries`` retries happen after the first attempt.

    ``RetryPolicy()`` gives 3 retries at 0.05 s/0.1 s/0.2 s --
    ``RetryPolicy(retries=0)`` disables retrying while keeping the uniform
    :class:`~repro.errors.SourceError` wrapping.
    """

    retries: int = 3
    backoff: float = 0.05
    multiplier: float = 2.0
    max_backoff: float = 2.0

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.backoff < 0:
            raise ValueError(f"backoff must be >= 0, got {self.backoff}")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")

    def delay(self, attempt: int) -> float:
        """Sleep before retry number ``attempt`` (1-based)."""
        return min(self.backoff * self.multiplier ** (attempt - 1),
                   self.max_backoff)


class _ReadGuard:
    """Retry/wrap state shared by one streaming read loop.

    Every low-level read goes through :meth:`read`: an armed fault plan may
    inject a failure first, a transient ``OSError`` is retried per the
    policy, and anything unrecoverable is re-raised as a
    :class:`~repro.errors.SourceError` carrying the byte offset reached.
    """

    __slots__ = ("kind", "retry", "socket", "offset", "attempt")

    def __init__(self, kind: str, retry: RetryPolicy | None,
                 *, socket: bool = False) -> None:
        self.kind = kind
        self.retry = retry
        self.socket = socket
        self.offset = 0
        self.attempt = 1

    def read(self, operation, *args):
        while True:
            try:
                if faults._STATE is not None:
                    if self.socket:
                        faults.maybe_socket_reset(self.offset)
                    else:
                        faults.maybe_io_error(self.kind, self.offset)
                result = operation(*args)
            except OSError as error:
                self.failed(error)
                continue
            self.attempt = 1
            if result:
                self.offset += result if isinstance(result, int) else len(result)
            return result

    def failed(self, error: OSError) -> None:
        """Sleep-and-return for a retryable error, raise SourceError otherwise."""
        transient = is_transient(error)
        if (transient and self.retry is not None
                and self.attempt <= self.retry.retries):
            time.sleep(self.retry.delay(self.attempt))
            self.attempt += 1
            return
        raise SourceError(
            f"{self.kind} read failed at byte {self.offset}: {error}",
            offset=self.offset,
            transient=transient,
            attempts=self.attempt,
        ) from error


# ----------------------------------------------------------------------
# Buffer reuse
# ----------------------------------------------------------------------
class BufferPool:
    """Recycled ``bytearray`` read buffers for ``readinto`` ingestion.

    A plain ``handle.read(chunk_size)`` allocates a fresh ``bytes`` object
    per chunk; at large chunk sizes that allocator churn dominates the
    ingestion cost.  A pool hands out fixed-size ``bytearray`` buffers that
    sources fill in place (``readinto``/``recv_into``) and return when the
    stream ends, so a million-chunk run touches a handful of buffers total.

    The pooled chunk is *borrowed*: it is only valid until the consumer asks
    the source for the next chunk.  The streaming runtimes uphold this by
    :meth:`~repro.core.stream.ChunkCursor.seal`-ing their window after every
    mutable chunk -- only the small carry-over suffix is copied, which is
    the entire point of the exercise.

    ``allocated``/``reused`` count buffer handouts and make the recycling
    observable (tests and the A/B benchmark assert on them).  The pool is
    not thread-safe; share one pool per thread (or per worker process).
    """

    __slots__ = ("buffer_size", "capacity", "allocated", "reused", "_free")

    def __init__(self, buffer_size: int = DEFAULT_CHUNK_SIZE,
                 capacity: int = 4) -> None:
        if buffer_size <= 0:
            raise ValueError(f"buffer_size must be positive, got {buffer_size}")
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.buffer_size = buffer_size
        self.capacity = capacity
        self.allocated = 0
        self.reused = 0
        self._free: list[bytearray] = []

    def acquire(self) -> bytearray:
        """A ``buffer_size`` bytearray: recycled when possible, fresh otherwise."""
        if self._free:
            self.reused += 1
            return self._free.pop()
        self.allocated += 1
        return bytearray(self.buffer_size)

    def release(self, buffer: bytearray) -> None:
        """Return ``buffer`` to the pool (dropped when the pool is full)."""
        if len(buffer) == self.buffer_size and len(self._free) < self.capacity:
            self._free.append(buffer)


def _fill(readinto, buffer: bytearray, guard: _ReadGuard | None = None) -> int:
    """Fill ``buffer`` from ``readinto`` until full or end of stream.

    With ``guard`` every partial read is individually retried/wrapped, so a
    transient error after a short ``readinto`` resumes exactly where the
    stream left off instead of losing the partial fill.
    """
    read = readinto if guard is None else (lambda part: guard.read(readinto, part))
    filled = read(buffer)
    if not filled:
        return 0
    length = len(buffer)
    view = None
    while filled < length:
        if view is None:
            view = memoryview(buffer)
        count = read(view[filled:])
        if not count:
            break
        filled += count
    return filled


def _check_pool_size(pool: BufferPool, chunk_size: int) -> None:
    """Reject a pool whose buffers do not match the requested chunking."""
    if pool.buffer_size != chunk_size:
        raise ValueError(
            f"buffer pool holds {pool.buffer_size}-byte buffers but the "
            f"source asked for {chunk_size}-byte chunks; size the pool to "
            "the chunk size (one pool per distinct chunk size)"
        )


def _pooled_chunks(readinto, pool: BufferPool,
                   guard: _ReadGuard | None = None) -> Iterator[bytes]:
    """Yield recycled-buffer chunks from a ``readinto`` callable.

    Full buffers are yielded *borrowed* (valid until the next iteration
    step); a short final fill is yielded as an owned ``bytes`` copy.
    """
    buffer = pool.acquire()
    try:
        while True:
            count = _fill(readinto, buffer, guard)
            if not count:
                return
            if count == len(buffer):
                yield buffer
            else:
                yield bytes(memoryview(buffer)[:count])
                return
    finally:
        pool.release(buffer)


# ----------------------------------------------------------------------
# Byte sources
# ----------------------------------------------------------------------
def file_chunks(
    path: str,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    *,
    pool: BufferPool | None = None,
    retry: RetryPolicy | None = None,
) -> Iterator[bytes]:
    """Read the file at ``path`` as binary ``chunk_size`` chunks (no decode).

    With ``pool`` the file is read via ``readinto`` into recycled buffers
    (one unbuffered syscall path); the pool's buffers must match
    ``chunk_size``, so a shared pool cannot silently change a source's
    chunking.  Without a pool every chunk is a fresh ``bytes`` object.

    Mid-stream ``OSError`` is surfaced as :class:`~repro.errors.SourceError`
    carrying the byte offset reached; with ``retry`` transient errors
    (see :data:`TRANSIENT_ERRNOS`) are retried in place with backoff first.
    Open-time errors (missing file, permissions) are *not* wrapped.
    """
    guard = _ReadGuard("file", retry)
    if pool is not None:
        _check_pool_size(pool, chunk_size)
        with open(path, "rb", buffering=0) as handle:
            yield from _pooled_chunks(handle.readinto, pool, guard)
        return
    with open(path, "rb") as handle:
        while True:
            chunk = guard.read(handle.read, chunk_size)
            if not chunk:
                return
            yield chunk


def open_mmap(path: str):
    """Memory-map the file at ``path`` read-only and return the map.

    The caller owns the map (use ``with open_mmap(path) as mm:``).  An
    empty file cannot be mapped, and a platform without :mod:`mmap` cannot
    map at all; both surface as :class:`~repro.errors.ReproError` so the
    CLI and other catch-all consumers report them cleanly.
    """
    from repro.errors import ReproError

    if _mmap is None:  # pragma: no cover - platform without mmap
        raise ReproError("mmap is not available on this platform")
    with open(path, "rb") as handle:
        try:
            return _mmap.mmap(handle.fileno(), 0, access=_mmap.ACCESS_READ)
        except ValueError as error:
            raise ReproError(f"cannot mmap {path!r}: {error}") from error


def mmap_chunks(
    path: str, chunk_size: int | None = DEFAULT_CHUNK_SIZE
) -> Iterator[bytes]:
    """Yield the file at ``path`` from a memory map.

    With an integer ``chunk_size`` the map is sliced into byte chunks (one
    copy from the page cache each, no decode).  ``chunk_size=None`` yields
    the *map object itself* as a single chunk: the runtime's search buffer
    is then the mapped pages and no heap copy of the document ever exists.
    In that mode the map is closed only after the consumer finished with
    the generator, so drive the filter to completion before disposing it
    (``Source.from_mmap`` runs through :mod:`repro.api` do this correctly).
    """
    mapping = open_mmap(path)
    try:
        if chunk_size is None:
            yield mapping
        else:
            if chunk_size <= 0:
                raise ValueError(f"chunk_size must be positive, got {chunk_size}")
            for start in range(0, len(mapping), chunk_size):
                yield mapping[start:start + chunk_size]
    finally:
        mapping.close()


def stdin_chunks(
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    *,
    pool: BufferPool | None = None,
    retry: RetryPolicy | None = None,
) -> Iterator[bytes]:
    """Read the process's binary stdin in ``chunk_size`` chunks.

    With ``pool`` (and a stdin that supports ``readinto``) the chunks are
    recycled pool buffers instead of fresh ``bytes`` per read.  Mid-stream
    ``OSError`` (a signal-interrupted pipe read, a dropped upstream) is
    surfaced as :class:`~repro.errors.SourceError` with the byte offset
    reached; ``retry`` retries transient errors in place first.
    """
    stream = getattr(sys.stdin, "buffer", sys.stdin)
    readinto = getattr(stream, "readinto", None)
    guard = _ReadGuard("stdin", retry)
    if pool is not None and readinto is not None:
        _check_pool_size(pool, chunk_size)
        yield from _pooled_chunks(readinto, pool, guard)
        return
    while True:
        chunk = guard.read(stream.read, chunk_size)
        if not chunk:
            return
        yield chunk


def socket_chunks(
    connection,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    *,
    pool: BufferPool | None = None,
    retry: RetryPolicy | None = None,
) -> Iterator[bytes]:
    """Receive byte chunks from ``connection`` until the peer shuts down.

    ``connection`` is anything with ``recv(size) -> bytes`` returning
    ``b""`` at end of stream (a connected socket, or a test double).  With
    ``pool`` (and a connection that supports ``recv_into``) each datagram
    lands in a recycled pool buffer; partial fills -- normal on sockets --
    are yielded as owned copies, full buffers are yielded borrowed.

    A mid-stream ``OSError`` (``ECONNRESET``, timeouts, ...) is surfaced
    as :class:`~repro.errors.SourceError` carrying the byte offset reached
    instead of leaking the raw error; ``retry`` retries transient errors
    in place with backoff first.
    """
    recv_into = getattr(connection, "recv_into", None)
    guard = _ReadGuard("socket", retry, socket=True)
    if pool is not None and recv_into is not None:
        _check_pool_size(pool, chunk_size)
        buffer = pool.acquire()
        try:
            while True:
                count = guard.read(recv_into, buffer)
                if not count:
                    return
                if count == len(buffer):
                    yield buffer
                else:
                    yield bytes(memoryview(buffer)[:count])
        finally:
            pool.release(buffer)
    while True:
        chunk = guard.read(connection.recv, chunk_size)
        if not chunk:
            return
        yield chunk


def iter_byte_chunks(
    source: "bytes | bytearray | memoryview | IO[bytes] | Iterable[bytes]",
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    *,
    retry: RetryPolicy | None = None,
) -> Iterator[bytes]:
    """Uniform byte-chunk stream over the supported byte input shapes.

    ``source`` may be a bytes-like object (sliced), a binary file-like
    object with ``read``, a socket-like object with ``recv``, or an
    iterable of byte chunks (passed through).  Stream-shaped inputs get the
    same :class:`~repro.errors.SourceError` wrapping (and optional
    transient-``retry``) as the dedicated source generators.
    """
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    if isinstance(source, (bytes, bytearray, memoryview)):
        for start in range(0, len(source), chunk_size):
            yield source[start:start + chunk_size]
        return
    read = getattr(source, "read", None)
    if callable(read):
        guard = _ReadGuard("stream", retry)
        while True:
            chunk = guard.read(read, chunk_size)
            if not chunk:
                return
            yield chunk
        return
    recv = getattr(source, "recv", None)
    if callable(recv):
        yield from socket_chunks(source, chunk_size, retry=retry)
        return
    for chunk in source:
        if chunk:
            yield chunk


# ----------------------------------------------------------------------
# Document-boundary splitting of concatenated record streams
# ----------------------------------------------------------------------
def split_documents(
    chunks: "Iterable[bytes | str]", end_tag: "bytes | str"
) -> Iterator[bytes]:
    """Split a concatenated multi-document stream at ``end_tag`` boundaries.

    A MEDLINE-style feed ships many complete documents back to back on one
    byte stream; each document ends with a known closing root tag (e.g.
    ``b"</MedlineCitationSet>"``).  This generator re-chunks such a stream
    into one ``bytes`` blob per document -- the corpus unit the parallel
    engine shards across workers -- holding only the current document's
    bytes plus one chunk in memory.

    Inter-document whitespace is stripped; trailing non-whitespace after
    the last ``end_tag`` is yielded as a final (possibly malformed) record
    so the filter reports it instead of silently dropping input.
    """
    tag = end_tag.encode("utf-8") if isinstance(end_tag, str) else bytes(end_tag)
    if not tag:
        raise ValueError("end_tag must be non-empty")
    buffer = bytearray()
    scanned = 0
    for chunk in chunks:
        if isinstance(chunk, str):
            chunk = chunk.encode("utf-8")
        buffer += chunk
        while True:
            found = buffer.find(tag, scanned)
            if found < 0:
                # No boundary yet; remember how far we scanned (a boundary
                # cannot start more than ``len(tag) - 1`` bytes back).
                scanned = max(0, len(buffer) - len(tag) + 1)
                break
            cut = found + len(tag)
            record = bytes(buffer[:cut]).lstrip()
            del buffer[:cut]
            scanned = 0
            if record:
                yield record
    tail = bytes(buffer).strip()
    if tail:
        yield tail


def split_jsonl(chunks: "Iterable[bytes | str]") -> Iterator[bytes]:
    """Split a JSON-Lines stream into one ``bytes`` record per line.

    JSONL forbids raw newlines inside a record (they are escaped as
    ``\\n`` in string literals), so the record boundary is simply ``\\n``
    — no tag scanning and no backoff needed.  Blank lines are skipped; a
    trailing line without a final newline is yielded as the last record.
    Memory holds one record plus one chunk, like :func:`split_documents`.
    """
    buffer = bytearray()
    for chunk in chunks:
        if isinstance(chunk, str):
            chunk = chunk.encode("utf-8")
        buffer += chunk
        while True:
            found = buffer.find(b"\n")
            if found < 0:
                break
            record = bytes(buffer[:found]).strip()
            del buffer[:found + 1]
            if record:
                yield record
    tail = bytes(buffer).strip()
    if tail:
        yield tail


# ----------------------------------------------------------------------
# Incremental UTF-8 handling
# ----------------------------------------------------------------------
def utf8_boundary(data: bytes) -> int:
    """Length of the longest prefix of ``data`` holding whole UTF-8 sequences.

    Looks at most three bytes back from the end (a UTF-8 sequence is at
    most four bytes): if the data ends inside a multi-byte sequence, the
    returned length excludes that partial tail.  Invalid encodings are not
    detected here -- they surface as ``UnicodeDecodeError`` when the bytes
    are eventually decoded.
    """
    length = len(data)
    if not length:
        return 0
    # Find the last non-continuation byte within the final four positions.
    index = length - 1
    floor = max(0, length - 4)
    while index >= floor and 0x80 <= data[index] < 0xC0:
        index -= 1
    if index < floor:
        # Four continuation bytes in a row can never be a split sequence;
        # pass them through and let the eventual decode report them.
        return length
    byte = data[index]
    if byte < 0x80:
        # ASCII last-lead position: any trailing continuation bytes are
        # invalid on their own, not a split sequence -- pass them through.
        return length
    expected = 2 if byte < 0xE0 else 3 if byte < 0xF0 else 4
    return length if length - index >= expected else index


class Utf8ChunkAligner:
    """Re-align a byte-chunk stream onto UTF-8 code-point boundaries.

    ``push(chunk)`` returns the aligned bytes ready for decoding (possibly
    ``b""``); a trailing partial multi-byte sequence is withheld and
    prepended to the next chunk.  ``finish()`` returns the final remainder
    -- non-empty only when the stream ended mid-sequence, which callers
    surface as a decode error.
    """

    __slots__ = ("_tail",)

    def __init__(self) -> None:
        self._tail = b""

    def push(self, chunk: bytes) -> bytes:
        data = self._tail + chunk if self._tail else chunk
        cut = utf8_boundary(data)
        self._tail = data[cut:]
        return data[:cut]

    def finish(self) -> bytes:
        tail, self._tail = self._tail, b""
        return tail


def align_utf8_chunks(chunks: Iterable[bytes]) -> Iterator[bytes]:
    """Yield the chunk stream re-aligned to UTF-8 code-point boundaries."""
    aligner = Utf8ChunkAligner()
    for chunk in chunks:
        aligned = aligner.push(chunk)
        if aligned:
            yield aligned
    tail = aligner.finish()
    if tail:
        yield tail  # let the consumer's decoder report the malformed tail


class Utf8SlidingDecoder:
    """Incremental UTF-8 decoder for byte fragments split anywhere.

    One instance per output channel: ``decode`` accepts fragments whose
    boundaries may fall inside a multi-byte sequence and returns the
    decodable prefix as ``str``; ``finish`` flushes and raises
    ``UnicodeDecodeError`` on a dangling partial sequence.
    """

    __slots__ = ("_decode",)

    def __init__(self) -> None:
        self._decode = codecs.getincrementaldecoder("utf-8")().decode

    def decode(self, fragment: bytes) -> str:
        return self._decode(fragment)

    def finish(self) -> str:
        return self._decode(b"", True)

    def export_state(self) -> tuple[bytes, int]:
        """The decoder's resume state (pending partial sequence + flags).

        Checkpointing a text-mode session must preserve an emitted fragment
        that ended inside a multi-byte UTF-8 sequence; this surfaces the
        incremental decoder's ``getstate()`` so :meth:`import_state` can
        restore it in a fresh process.
        """
        return self._decode.__self__.getstate()

    def import_state(self, state) -> None:
        """Restore a state captured by :meth:`export_state`."""
        pending, flags = state
        self._decode.__self__.setstate((bytes(pending), int(flags)))


def decode_chunks(chunks: Iterable[bytes]) -> Iterator[str]:
    """Decode a byte-chunk stream to ``str`` chunks incrementally.

    The boundary handling never splits a character: each emitted ``str``
    chunk corresponds to the decodable prefix available so far.  This is
    the compatibility bridge from byte sources to ``str``-consuming layers
    (the incremental tokenizer); the filter hot path never uses it.
    """
    decoder = Utf8SlidingDecoder()
    for chunk in chunks:
        text = decoder.decode(chunk)
        if text:
            yield text
    tail = decoder.finish()
    if tail:
        yield tail
