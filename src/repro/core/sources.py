"""Byte-oriented input subsystem of the streaming SMP runtime.

The paper reduces XML prefiltering to raw string matching, so the matcher
automata can run directly on the wire/disk representation: UTF-8 bytes.
This module provides the byte sources that feed the byte-native runtime
without ever paying the ``bytes -> str`` decode-and-copy (the user-facing
wrapper with uniform chunk-size/alignment options and resource-safe open
contexts is :class:`repro.api.Source`, built on these generators):

* :func:`file_chunks` -- buffered binary reads of ``chunk_size`` pieces;
* :func:`mmap_chunks` / :func:`open_mmap` -- memory-mapped files: with
  ``chunk_size=None`` the *whole map* becomes the runtime's search buffer
  (searches run against the mapped pages; only output slices materialise);
* :func:`stdin_chunks` -- the process's binary stdin;
* :func:`socket_chunks` -- anything with ``recv`` (sockets, socket-likes);
* :func:`iter_byte_chunks` -- the uniform dispatcher over all byte shapes.

Incremental UTF-8 handling
--------------------------
Byte chunk boundaries fall anywhere, including inside a multi-byte UTF-8
sequence.  The byte-native matchers do not care -- tag keywords are ASCII
and a UTF-8 continuation byte can never start one -- but any place that
*decodes* must respect code-point boundaries:

* :class:`Utf8ChunkAligner` re-aligns a byte-chunk stream so every emitted
  chunk ends on a code-point boundary (it carries the trailing partial
  sequence into the next chunk).  Used to feed ``str`` consumers (the
  incremental tokenizer) from byte sources without ever splitting a
  character.
* :class:`Utf8SlidingDecoder` wraps an incremental UTF-8 decoder for the
  *output* side: the filter runtimes emit raw byte slices of the document,
  and the text-mode API decodes exactly those emitted slices -- the only
  bytes that are ever decoded on the byte path.

Both are thin, allocation-light wrappers; :func:`utf8_boundary` is the
underlying pure function (the longest prefix that is a whole number of
UTF-8 sequences).
"""

from __future__ import annotations

import codecs
import sys
from typing import IO, Iterable, Iterator

from repro.core.stream import DEFAULT_CHUNK_SIZE

try:  # pragma: no cover - mmap exists on all supported platforms
    import mmap as _mmap
except ImportError:  # pragma: no cover
    _mmap = None  # type: ignore[assignment]


def have_mmap() -> bool:
    """True when the platform provides :mod:`mmap`."""
    return _mmap is not None


# ----------------------------------------------------------------------
# Byte sources
# ----------------------------------------------------------------------
def file_chunks(path: str, chunk_size: int = DEFAULT_CHUNK_SIZE) -> Iterator[bytes]:
    """Read the file at ``path`` as binary ``chunk_size`` chunks (no decode)."""
    with open(path, "rb") as handle:
        while True:
            chunk = handle.read(chunk_size)
            if not chunk:
                return
            yield chunk


def open_mmap(path: str):
    """Memory-map the file at ``path`` read-only and return the map.

    The caller owns the map (use ``with open_mmap(path) as mm:``).  An
    empty file cannot be mapped, and a platform without :mod:`mmap` cannot
    map at all; both surface as :class:`~repro.errors.ReproError` so the
    CLI and other catch-all consumers report them cleanly.
    """
    from repro.errors import ReproError

    if _mmap is None:  # pragma: no cover - platform without mmap
        raise ReproError("mmap is not available on this platform")
    with open(path, "rb") as handle:
        try:
            return _mmap.mmap(handle.fileno(), 0, access=_mmap.ACCESS_READ)
        except ValueError as error:
            raise ReproError(f"cannot mmap {path!r}: {error}") from error


def mmap_chunks(
    path: str, chunk_size: int | None = DEFAULT_CHUNK_SIZE
) -> Iterator[bytes]:
    """Yield the file at ``path`` from a memory map.

    With an integer ``chunk_size`` the map is sliced into byte chunks (one
    copy from the page cache each, no decode).  ``chunk_size=None`` yields
    the *map object itself* as a single chunk: the runtime's search buffer
    is then the mapped pages and no heap copy of the document ever exists.
    In that mode the map is closed only after the consumer finished with
    the generator, so drive the filter to completion before disposing it
    (the one-shot ``filter_mmap`` entry points do this correctly).
    """
    mapping = open_mmap(path)
    try:
        if chunk_size is None:
            yield mapping
        else:
            if chunk_size <= 0:
                raise ValueError(f"chunk_size must be positive, got {chunk_size}")
            for start in range(0, len(mapping), chunk_size):
                yield mapping[start:start + chunk_size]
    finally:
        mapping.close()


def stdin_chunks(chunk_size: int = DEFAULT_CHUNK_SIZE) -> Iterator[bytes]:
    """Read the process's binary stdin in ``chunk_size`` chunks."""
    stream = getattr(sys.stdin, "buffer", sys.stdin)
    while True:
        chunk = stream.read(chunk_size)
        if not chunk:
            return
        yield chunk


def socket_chunks(connection, chunk_size: int = DEFAULT_CHUNK_SIZE) -> Iterator[bytes]:
    """Receive byte chunks from ``connection`` until the peer shuts down.

    ``connection`` is anything with ``recv(size) -> bytes`` returning
    ``b""`` at end of stream (a connected socket, or a test double).
    """
    while True:
        chunk = connection.recv(chunk_size)
        if not chunk:
            return
        yield chunk


def iter_byte_chunks(
    source: "bytes | bytearray | memoryview | IO[bytes] | Iterable[bytes]",
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> Iterator[bytes]:
    """Uniform byte-chunk stream over the supported byte input shapes.

    ``source`` may be a bytes-like object (sliced), a binary file-like
    object with ``read``, a socket-like object with ``recv``, or an
    iterable of byte chunks (passed through).
    """
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    if isinstance(source, (bytes, bytearray, memoryview)):
        for start in range(0, len(source), chunk_size):
            yield source[start:start + chunk_size]
        return
    read = getattr(source, "read", None)
    if callable(read):
        while True:
            chunk = read(chunk_size)
            if not chunk:
                return
            yield chunk
        return
    recv = getattr(source, "recv", None)
    if callable(recv):
        yield from socket_chunks(source, chunk_size)
        return
    for chunk in source:
        if chunk:
            yield chunk


# ----------------------------------------------------------------------
# Incremental UTF-8 handling
# ----------------------------------------------------------------------
def utf8_boundary(data: bytes) -> int:
    """Length of the longest prefix of ``data`` holding whole UTF-8 sequences.

    Looks at most three bytes back from the end (a UTF-8 sequence is at
    most four bytes): if the data ends inside a multi-byte sequence, the
    returned length excludes that partial tail.  Invalid encodings are not
    detected here -- they surface as ``UnicodeDecodeError`` when the bytes
    are eventually decoded.
    """
    length = len(data)
    if not length:
        return 0
    # Find the last non-continuation byte within the final four positions.
    index = length - 1
    floor = max(0, length - 4)
    while index >= floor and 0x80 <= data[index] < 0xC0:
        index -= 1
    if index < floor:
        # Four continuation bytes in a row can never be a split sequence;
        # pass them through and let the eventual decode report them.
        return length
    byte = data[index]
    if byte < 0x80:
        # ASCII last-lead position: any trailing continuation bytes are
        # invalid on their own, not a split sequence -- pass them through.
        return length
    expected = 2 if byte < 0xE0 else 3 if byte < 0xF0 else 4
    return length if length - index >= expected else index


class Utf8ChunkAligner:
    """Re-align a byte-chunk stream onto UTF-8 code-point boundaries.

    ``push(chunk)`` returns the aligned bytes ready for decoding (possibly
    ``b""``); a trailing partial multi-byte sequence is withheld and
    prepended to the next chunk.  ``finish()`` returns the final remainder
    -- non-empty only when the stream ended mid-sequence, which callers
    surface as a decode error.
    """

    __slots__ = ("_tail",)

    def __init__(self) -> None:
        self._tail = b""

    def push(self, chunk: bytes) -> bytes:
        data = self._tail + chunk if self._tail else chunk
        cut = utf8_boundary(data)
        self._tail = data[cut:]
        return data[:cut]

    def finish(self) -> bytes:
        tail, self._tail = self._tail, b""
        return tail


def align_utf8_chunks(chunks: Iterable[bytes]) -> Iterator[bytes]:
    """Yield the chunk stream re-aligned to UTF-8 code-point boundaries."""
    aligner = Utf8ChunkAligner()
    for chunk in chunks:
        aligned = aligner.push(chunk)
        if aligned:
            yield aligned
    tail = aligner.finish()
    if tail:
        yield tail  # let the consumer's decoder report the malformed tail


class Utf8SlidingDecoder:
    """Incremental UTF-8 decoder for byte fragments split anywhere.

    One instance per output channel: ``decode`` accepts fragments whose
    boundaries may fall inside a multi-byte sequence and returns the
    decodable prefix as ``str``; ``finish`` flushes and raises
    ``UnicodeDecodeError`` on a dangling partial sequence.
    """

    __slots__ = ("_decode",)

    def __init__(self) -> None:
        self._decode = codecs.getincrementaldecoder("utf-8")().decode

    def decode(self, fragment: bytes) -> str:
        return self._decode(fragment)

    def finish(self) -> str:
        return self._decode(b"", True)


def decode_chunks(chunks: Iterable[bytes]) -> Iterator[str]:
    """Decode a byte-chunk stream to ``str`` chunks incrementally.

    The boundary handling never splits a character: each emitted ``str``
    chunk corresponds to the decodable prefix available so far.  This is
    the compatibility bridge from byte sources to ``str``-consuming layers
    (the incremental tokenizer); the filter hot path never uses it.
    """
    decoder = Utf8SlidingDecoder()
    for chunk in chunks:
        text = decoder.decode(chunk)
        if text:
            yield text
    tail = decoder.finish()
    if tail:
        yield tail
