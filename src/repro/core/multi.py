"""Shared-scan multi-query engine: one document pass feeding N prefilters.

The point of SMP prefiltering is that XPath evaluation collapses to keyword
scanning -- and keyword scanning amortises: one automaton pass over the
union vocabulary of N compiled queries costs one document scan regardless of
N.  :class:`MultiQueryEngine` exploits that.  It compiles every query to its
own :class:`~repro.core.prefilter.SmpPrefilter` plan (shared through the
plan cache), unions their keyword sets into one
:class:`~repro.matching.dispatch.KeywordDispatcher` (whose trie-compiled
union pattern is an Aho-Corasick-style automaton executed in C), and drives
one :class:`~repro.core.runtime.DrivenStream` per query from the shared hit
stream::

    engine = MultiQueryEngine(dtd, [q2, q5, q7], backend="native")
    session = engine.session()
    for chunk in chunks:
        session.feed(chunk)
    session.finish()

(The public one-shot spelling is ``repro.api.Engine([q2, q5, q7]).run(
source)``.)

Equivalence: each driven stream replays exactly the decisions its private
:class:`~repro.core.runtime.RuntimeStream` would have made, so per-query
output and the structural statistics (tokens matched/copied, regions,
initial jumps, local scans, sizes) are byte-identical to N independent
:class:`~repro.core.prefilter.FilterSession` runs.  What changes is the
cost: the character-scanning work happens once, on the shared scan, instead
of once per query -- per-query matcher counters (comparisons, shifts) are
therefore zero and the engine-level :attr:`MultiQuerySession.scan_stats`
carries the once-paid scan cost.

Two dispatch refinements keep the per-hit interpreter cost low:

* *Dynamic subscriptions.*  A hit is resolved (validity check, end-of-tag
  scan) and dispatched only when some stream's **current** state searches
  its keyword; everything else is skipped after one dictionary probe -- the
  shared-scan analogue of the searching runtimes skipping irrelevant
  regions.
* *Free prefix expansion.*  Union keywords that are prefixes of a scanned
  hit co-occur at its position but are always false matches (the next
  character belongs to the longer keyword's tag name), so their rejection
  bookkeeping is dispatched without reading the text.

Like the single-query session, a :class:`MultiQuerySession` is incremental
and *byte-native*: feed arbitrary ``bytes`` chunks (``str`` chunks are
UTF-8 encoded on entry), the union automaton is a ``bytes`` pattern running
directly on the buffered wire/disk representation, and memory stays
O(chunk + carry window) where the carry window covers the suspended scan
tail plus un-flushed copy regions across all queries.  Only the bytes each
query actually copies to output are ever decoded (text mode) -- or none at
all (``binary=True``).
"""

from __future__ import annotations

import time
from array import array
from dataclasses import dataclass, field
from typing import Sequence

from repro.accel import load_accel
from repro.core.prefilter import SmpPrefilter
from repro.core.runtime import (
    AnySink,
    DrivenStream,
    StepProgram,
    compile_step_tables,
    resolve_delivery,
)
from repro.core.stats import CompilationStatistics, RunStatistics
from repro.core.stream import DEFAULT_CHUNK_SIZE, ChunkCursor, iter_chunks
from repro.core.tables import RuntimeTables
from repro.dtd.model import Dtd
from repro.errors import CheckpointError, QueryError, RuntimeFilterError
from repro.matching.dispatch import KeywordDispatcher
from repro.projection.extraction import QuerySpec, extract_paths_from_xpath
from repro.xml.escape import is_name_byte


@dataclass
class MultiQueryRun:
    """The result of filtering one document against N queries."""

    labels: list[str]
    outputs: list[str]
    stats: list[RunStatistics]
    scan_stats: RunStatistics
    compilations: list[CompilationStatistics] = field(default_factory=list)

    def __iter__(self):
        return iter(zip(self.labels, self.outputs, self.stats))


def _all_keywords(tables: RuntimeTables) -> set[bytes]:
    """Every UTF-8 keyword a runtime can search for, across all its states."""
    keywords: set[bytes] = set()
    for vocabulary in tables.vocabulary_bytes.values():
        keywords.update(vocabulary)
    return keywords


class _NativeStep:
    """Cached native-stepping context of one (dispatcher, stream set) pair.

    Holds everything the C ``step_events`` kernel consumes per call: the
    per-stream :class:`~repro.core.runtime.StepProgram` capsules (compiled
    once per distinct runtime-table object over the dispatcher's union
    keyword space), the shared 16-slot-per-stream state array and the
    reusable span output buffer.  Rebuilt whenever the dispatcher changes
    (an attach brought new keywords) or the stream count changes.
    """

    __slots__ = (
        "dispatcher", "count", "programs", "capsules", "state", "spans",
        "prefix_starts", "prefix_ids",
    )

    def __init__(self, dispatcher, prefilters, accel_mod) -> None:
        self.dispatcher = dispatcher
        self.count = len(prefilters)
        shared: dict[int, StepProgram] = {}
        programs: list[StepProgram] = []
        for plan in prefilters:
            tables = plan.tables
            program = shared.get(id(tables))
            if program is None:
                program = shared[id(tables)] = compile_step_tables(
                    tables, dispatcher.keywords, accel_mod
                )
            programs.append(program)
        self.programs = programs
        self.capsules = tuple(program.capsule for program in programs)
        self.state = array("q", bytes(8 * 16 * self.count))
        self.spans = array("q", bytes(8 * 3 * max(64, 4 * self.count)))
        self.prefix_starts = dispatcher.prefix_starts
        self.prefix_ids = dispatcher.prefix_ids


class MultiQueryEngine:
    """Compile N queries into one shared-scan filtering plan.

    Parameters
    ----------
    dtd:
        The common schema of the incoming documents.
    queries:
        XPath strings (projection paths are extracted automatically),
        workload :class:`QuerySpec` objects, or prebuilt
        :class:`SmpPrefilter` plans -- mixed freely.
    backend:
        Matcher backend of the per-query plans (``"native"`` is the
        wall-clock oriented default); the shared scan itself runs on the
        backend-independent union automaton.
    use_plan_cache:
        Share compiled plans through :meth:`SmpPrefilter.cached`, so
        constructing several engines over overlapping query sets compiles
        each query once.

    The engine is immutable after construction; open one
    :class:`MultiQuerySession` per document (any number concurrently).
    """

    def __init__(
        self,
        dtd: Dtd,
        queries: Sequence["str | QuerySpec | SmpPrefilter"],
        *,
        backend: str = "native",
        use_plan_cache: bool = True,
    ) -> None:
        if not queries:
            raise QueryError("MultiQueryEngine needs at least one query")
        self.dtd = dtd
        self.backend = backend
        self.labels: list[str] = []
        self.prefilters: list[SmpPrefilter] = []
        for index, query in enumerate(queries):
            if isinstance(query, SmpPrefilter):
                label = f"Q{index + 1}"
                plan = query
            elif isinstance(query, QuerySpec):
                label = query.name
                plan = (
                    SmpPrefilter.cached_for_query(dtd, query, backend=backend)
                    if use_plan_cache
                    else SmpPrefilter.compile_for_query(dtd, query, backend=backend)
                )
            else:
                label = str(query)
                compile_plan = (
                    SmpPrefilter.cached if use_plan_cache else SmpPrefilter.compile
                )
                plan = compile_plan(
                    dtd,
                    extract_paths_from_xpath(str(query)),
                    backend=backend,
                    add_default_paths=False,
                )
            self.labels.append(label)
            self.prefilters.append(plan)
        #: Owner index -> every UTF-8 keyword that query can search for.
        self.vocabularies: dict[int, set[bytes]] = {
            index: _all_keywords(plan.tables)
            for index, plan in enumerate(self.prefilters)
        }
        #: Shared, immutable: owners table + union scan automaton.
        self.dispatcher = KeywordDispatcher(self.vocabularies, backend=backend)

    # ------------------------------------------------------------------
    # Sessions
    # ------------------------------------------------------------------
    def session(
        self,
        *,
        sinks: Sequence[AnySink | None] | None = None,
        binary: bool = False,
        delivery: "str | None" = None,
    ) -> "MultiQuerySession":
        """Open a streaming session for one document.

        ``sinks`` optionally routes each query's projected fragments to its
        own callback (one entry per query, ``None`` entries accumulate); the
        per-feed return values are then empty for those queries.  With
        ``binary=True`` every output channel carries raw projected bytes.
        ``delivery`` selects the union-scan delivery mode (see
        :data:`repro.core.runtime.DELIVERIES`): ``"accel"`` runs the scan
        through the optional C kernel, anything else the pure batched
        loop; both are byte-identical in output and statistics.
        """
        return MultiQuerySession(
            self, sinks=sinks, binary=binary, delivery=delivery
        )

    # ------------------------------------------------------------------
    # One-shot entry point (delegates to repro.api)
    # ------------------------------------------------------------------
    def _api_run(
        self, source, *, sinks=None, binary=False, measure_memory=False
    ) -> MultiQueryRun:
        """Delegate a one-shot run to the unified dataflow API."""
        from repro import api

        run = api.Engine._wrap_multi(self).run(
            source, sinks=sinks, binary=binary, measure_memory=measure_memory
        )
        return MultiQueryRun(
            labels=run.labels,
            outputs=run.outputs,
            stats=[result.stats for result in run.results],
            scan_stats=run.scan_stats,
            compilations=[result.compilation for result in run.results],
        )


class MultiQuerySession:
    """One shared-scan filtering run of N queries over one document.

    The session owns the shared :class:`ChunkCursor` window and one
    :class:`DrivenStream` per query; the engine's dispatcher provides the
    union automaton.  ``feed`` returns the list of newly emitted per-query
    outputs (empty strings when sinks are used); ``finish`` validates
    acceptance for every query and returns the remaining outputs.

    Query membership is *live*: :meth:`attach` adds a query mid-document
    (it observes the stream from the current dispatch frontier on, exactly
    as a fresh session fed only the remaining input) and :meth:`detach`
    freezes one (no further output, no further statistics mutation).  The
    dynamic subscription registry already treats membership per keyword, so
    attach/detach reduce to subscription edits plus — when an attached
    query brings new keywords — a session-local rebuild of the union scan
    automaton.
    """

    def __init__(
        self,
        engine: MultiQueryEngine,
        sinks: Sequence[AnySink | None] | None = None,
        *,
        binary: bool = False,
        delivery: "str | None" = None,
    ) -> None:
        if sinks is not None and len(sinks) != len(engine.prefilters):
            raise QueryError(
                f"expected {len(engine.prefilters)} sinks, got {len(sinks)}"
            )
        self.engine = engine
        self.binary = binary
        #: Per-session plan list (the engine's, plus attached queries).
        self.prefilters: list[SmpPrefilter] = list(engine.prefilters)
        #: Per-session labels (the engine's, plus attached queries).
        self.labels: list[str] = list(engine.labels)
        self._window = ChunkCursor(binary=True)
        self._streams = [
            DrivenStream(
                plan.tables,
                self._window,
                sink=None if sinks is None else sinks[index],
                binary=binary,
            )
            for index, plan in enumerate(engine.prefilters)
        ]
        self._dispatcher = engine.dispatcher
        #: Owner index -> full keyword vocabulary; session-local so attached
        #: queries can extend the union automaton.
        self._vocabularies: dict[int, set[bytes]] = dict(engine.vocabularies)
        self._detached: list[bool] = [False] * len(self._streams)
        self._attach_offsets: list[int] = [0] * len(self._streams)
        #: Absolute offset the union scan resumes from; every token
        #: starting below it has been dispatched.
        self._scan_from = 0
        self._finished = False
        #: Engine-level counters: the once-paid scanning cost plus timings.
        self.scan_stats = RunStatistics()
        # Dynamic subscriptions: byte keyword -> indices of streams whose
        # *current* state searches it.  Hits nobody subscribes to are
        # dropped after one dictionary probe, unresolved.
        self._subscribed: list[tuple[bytes, ...]] = [() for _ in self._streams]
        self._subscribers: dict[bytes, list[int]] = {}
        #: (old, new) vocabulary tuples -> (removals, additions); transitions
        #: cycle through few distinct state pairs, so diffs are computed once.
        self._diff_cache: dict[tuple, tuple[tuple[bytes, ...], tuple[bytes, ...]]] = {}
        # Delivery tiers of the shared scan (all byte-identical in output
        # and counters): "pertoken" keeps everything in Python (the
        # reference loop), "batched" runs the union sweep through the C
        # scan kernel with per-event dispatch in Python, and "accel" also
        # steps the driven streams natively (scan + dispatch + transition
        # + span emission in one C loop).
        self._mode = resolve_delivery(delivery)
        self._accel = load_accel() if self._mode != "pertoken" else None
        if delivery == "accel" and self._accel is None:
            self.scan_stats.accel_degraded = 1
        self._native_ok = (
            self._mode == "accel"
            and self._accel is not None
            and hasattr(self._accel, "step_events")
        )
        self._native: _NativeStep | None = None
        self._events: array | None = None  # reusable flat C event buffer
        for index in range(len(self._streams)):
            self._resubscribe(index)

    @property
    def delivery(self) -> str:
        """The effective delivery mode of the shared union scan."""
        if self._accel is None:
            return "pertoken" if self._mode == "pertoken" else "batched"
        return self._mode

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def stats(self) -> list[RunStatistics]:
        """Per-query structural statistics (complete after ``finish``)."""
        return [stream.stats for stream in self._streams]

    @property
    def finished(self) -> bool:
        """True once :meth:`finish` has completed."""
        return self._finished

    @property
    def buffered_bytes(self) -> int:
        """Input bytes currently retained in the shared window."""
        return len(self._window)

    def is_attached(self, index: int) -> bool:
        """True while query ``index`` still participates in the scan."""
        return not self._detached[index]

    def attach_offset(self, index: int) -> int:
        """Absolute byte offset query ``index`` started observing from."""
        return self._attach_offsets[index]

    def accepted(self, index: int) -> bool:
        """True once query ``index``'s runtime automaton reached a final
        state (mid-document attached queries may legitimately never do)."""
        return self._streams[index].accepted

    # ------------------------------------------------------------------
    # Checkpoint: capture and restore
    # ------------------------------------------------------------------
    def export_state(self) -> dict:
        """Capture the whole session -- shared window, union-scan cursor,
        every per-query stream -- as plain data.

        Valid at any feed boundary: the union scan's batch contract never
        suspends mid-candidate between feeds, so the snapshot is exact and
        independent of the delivery mode it was captured under.
        """
        if self._finished:
            raise CheckpointError(
                "cannot checkpoint a finished multi-query session"
            )
        window = self._window
        return {
            "kind": "multi",
            "binary": self.binary,
            "input_offset": self.scan_stats.input_size,
            "scan_from": self._scan_from,
            "window": {
                "base": window.base,
                "data": (
                    window.slice(window.base, window.end)
                    if window.end > window.base else b""
                ),
                "eof": window.eof,
            },
            "scan_stats": self.scan_stats.export_state(),
            "streams": [stream.export_state() for stream in self._streams],
            "detached": list(self._detached),
            "attach_offsets": list(self._attach_offsets),
            "labels": list(self.labels),
            "finished": self._finished,
        }

    def import_state(self, snapshot: dict) -> None:
        """Restore a snapshot captured by :meth:`export_state`.

        Must be called on a fresh session built over the same query set
        (queries attached after construction must be re-attached first --
        the restore then overwrites every stream's mutable state, including
        its attach offset).  Keyword subscriptions and the native stepping
        context are rebuilt from the restored automaton states.
        """
        if snapshot.get("kind") != "multi":
            raise CheckpointError("snapshot is not a multi-query checkpoint")
        if self.scan_stats.input_size or len(self._window) or self._window.base:
            raise CheckpointError(
                "import_state requires a freshly constructed session"
            )
        if bool(snapshot["binary"]) != self.binary:
            captured = "binary" if snapshot["binary"] else "text"
            raise CheckpointError(
                f"checkpoint was captured in {captured} output mode; "
                "restore with the same mode"
            )
        streams_state = snapshot["streams"]
        if len(streams_state) != len(self._streams):
            raise CheckpointError(
                f"checkpoint holds {len(streams_state)} queries but this "
                f"session has {len(self._streams)}; re-attach the same "
                "query set before restoring"
            )
        window_state = snapshot["window"]
        window = self._window
        window.rebase(int(window_state["base"]))
        data = window_state["data"]
        if data:
            window.append(bytes(data))
        if window_state["eof"]:
            window.close()
        self.scan_stats = RunStatistics.from_state(snapshot["scan_stats"])
        self._scan_from = int(snapshot["scan_from"])
        self._detached = [bool(flag) for flag in snapshot["detached"]]
        self._attach_offsets = [
            int(offset) for offset in snapshot["attach_offsets"]
        ]
        self.labels = [str(label) for label in snapshot["labels"]]
        for stream, state in zip(self._streams, streams_state):
            stream.import_state(state)
        self._finished = bool(snapshot["finished"])
        # Subscriptions follow the restored automaton states; the native
        # stepping context is rebuilt lazily on the next feed.
        self._subscribers = {}
        self._subscribed = [() for _ in self._streams]
        for index in range(len(self._streams)):
            if not self._detached[index]:
                self._resubscribe(index)
        self._native = None

    # ------------------------------------------------------------------
    # Live query membership
    # ------------------------------------------------------------------
    def attach(
        self,
        prefilter: SmpPrefilter,
        *,
        sink: AnySink | None = None,
        label: str | None = None,
    ) -> int:
        """Attach one more compiled query to the live stream.

        The new query observes the document from the current dispatch
        frontier (the returned index's :meth:`attach_offset`): its output
        and structural statistics are identical to a fresh session fed only
        the input from that byte offset on.  Keywords the union automaton
        does not already scan trigger a session-local dispatcher rebuild.
        Returns the query's stream index (its handle for :meth:`detach`).
        """
        if self._finished:
            raise RuntimeFilterError(
                "cannot attach to a finished multi-query session"
            )
        index = len(self._streams)
        attached_at = self._scan_from
        stream = DrivenStream(
            prefilter.tables,
            self._window,
            sink=sink,
            binary=self.binary,
            start_at=attached_at,
        )
        # The bytes already buffered beyond the frontier will be scanned on
        # the query's behalf, so they count as its input.
        stream.stats.input_size = max(0, self._window.end - attached_at)
        self._streams.append(stream)
        self.prefilters.append(prefilter)
        self.labels.append(f"Q{index + 1}" if label is None else label)
        self._detached.append(False)
        self._attach_offsets.append(attached_at)
        self._subscribed.append(())
        vocabulary = _all_keywords(prefilter.tables)
        self._vocabularies[index] = vocabulary
        if not vocabulary.issubset(self._dispatcher.keywords):
            self._dispatcher = KeywordDispatcher(
                {
                    owner: keywords
                    for owner, keywords in self._vocabularies.items()
                    if not self._detached[owner]
                },
                backend=self.engine.backend,
            )
        self._resubscribe(index)
        return index

    def detach(self, index: int):
        """Detach query ``index`` from the live stream.

        The query stops receiving occurrences immediately: no further
        output is emitted and its statistics freeze.  Returns the pending
        un-taken output (sink-routed queries return the empty value).  The
        slot stays in ``feed``/``finish`` return lists as empty output.
        """
        if not 0 <= index < len(self._streams):
            raise QueryError(f"no query with handle {index}")
        if self._detached[index]:
            raise QueryError(f"query {self.labels[index]!r} is already detached")
        for keyword in self._subscribed[index]:
            self._subscribers[keyword].remove(index)
        self._subscribed[index] = ()
        self._detached[index] = True
        stream = self._streams[index]
        # The stream will never reach finish(); seal its output counter at
        # the bytes actually emitted so the frozen statistics are complete.
        stream.stats.output_size = stream.emitted_bytes
        return stream.take_output()

    # ------------------------------------------------------------------
    # Feeding
    # ------------------------------------------------------------------
    def feed(self, chunk) -> list:
        """Process one input chunk (``bytes`` natively, ``str`` through the
        encode shim); returns the per-query emitted output."""
        if self._finished:
            raise RuntimeFilterError("cannot feed a finished multi-query session")
        if isinstance(chunk, str):
            chunk = chunk.encode("utf-8")
        started = time.perf_counter()
        length = len(chunk)
        detached = self._detached
        borrowed = isinstance(chunk, (bytearray, memoryview))
        self.scan_stats.input_size += length
        for index, stream in enumerate(self._streams):
            if not detached[index]:
                stream.stats.input_size += length
        self._window.append(chunk)
        self._process()
        self._trim()
        if borrowed:
            # A mutable chunk (recycled read buffer) may be overwritten by
            # the producer after this call: own the retained suffix now.
            self._window.seal()
        self.scan_stats.run_seconds += time.perf_counter() - started
        empty = b"" if self.binary else ""
        return [
            empty if detached[index] else stream.take_output()
            for index, stream in enumerate(self._streams)
        ]

    def finish(self) -> list:
        """Signal end of input; returns the remaining per-query output.

        Raises :class:`RuntimeFilterError` when any attached query's
        automaton did not accept (the document does not conform to the DTD)
        or when the document ends inside a tag.  Detached queries are not
        validated and contribute empty output.
        """
        if self._finished:
            raise RuntimeFilterError("multi-query session is already finished")
        started = time.perf_counter()
        self._window.close()
        self._process()
        self._finished = True
        empty = b"" if self.binary else ""
        detached = self._detached
        # Queries attached mid-document legitimately may not accept (their
        # automaton never saw the document root): flush them unvalidated;
        # :meth:`accepted` reports whether they reached a final state.
        outputs = [
            empty if detached[index]
            else stream.finish(validate=self._attach_offsets[index] == 0)
            for index, stream in enumerate(self._streams)
        ]
        stats = self.scan_stats
        stats.output_size = sum(stream.stats.output_size for stream in self._streams)
        stats.run_seconds += time.perf_counter() - started
        return outputs

    def run(self, chunks, chunk_size: int = DEFAULT_CHUNK_SIZE) -> MultiQueryRun:
        """Feed all of ``chunks`` and finish; returns the :class:`MultiQueryRun`.

        ``chunks`` is anything :func:`repro.core.stream.iter_chunks`
        understands -- a whole document (``str``/``bytes``), a file object,
        or an iterable of chunks.
        """
        pieces: list[list] = [[] for _ in self._streams]
        for chunk in iter_chunks(chunks, chunk_size):
            self._gather(self.feed(chunk), pieces)
        self._gather(self.finish(), pieces)
        empty = b"" if self.binary else ""
        return MultiQueryRun(
            labels=list(self.labels),
            outputs=[empty.join(parts) for parts in pieces],
            stats=list(self.stats),
            scan_stats=self.scan_stats,
            compilations=[plan.compilation for plan in self.prefilters],
        )

    def _gather(self, outputs: list, pieces: list[list]) -> None:
        while len(pieces) < len(outputs):
            pieces.append([])
        for index, emitted in enumerate(outputs):
            if emitted:
                pieces[index].append(emitted)

    # ------------------------------------------------------------------
    # The shared scan loop
    # ------------------------------------------------------------------
    def _process(self) -> None:
        """One union-automaton pass over the new window content.

        Per scanned occurrence: one subscription probe; for subscribed hits
        a validity check (one character), the shared end-of-tag scan (one
        C-level ``find`` plus two short quote probes on the fast path) and
        the dispatch to the subscribed streams; co-located prefix keywords
        are dispatched as false matches without reading the text.  Returns
        early -- leaving the scan position on the undecidable hit -- when a
        decision needs input beyond the buffered window.
        """
        if self._accel is not None:
            capsule = self._dispatcher.accel_capsule(self._accel)
            if capsule is not None:
                if self._native_ok:
                    self._process_native(capsule)
                else:
                    self._process_accel(capsule)
                return
        self._process_pure()

    def _process_native(self, capsule) -> None:
        """The fully native pass: scan, dispatch and stepping in one C loop.

        ``repro._accel.step_events`` consumes the union sweep directly --
        occurrence scan, subscription probe, per-stream Figure-4 transition
        and the output-span decisions all happen below the interpreter --
        and emits batched ``(stream, start, end)`` copy spans this loop
        applies to the sinks in bulk.  Stream state crosses the boundary
        through flat 16-slot blocks (:meth:`DrivenStream.export_native` /
        ``import_native``); subscriptions are refreshed once per call
        rather than per transition, which is safe because the kernel
        performs the equivalent vocabulary probe on its own tables.  The
        kernel bails back to :meth:`_process_accel` for the rare event it
        cannot settle (a transition error), which replays it in Python and
        raises the identical diagnostics.
        """
        window = self._window
        dispatcher = self._dispatcher
        text, base = window.view()
        eof = window.eof
        length = len(text)
        holdback = length if eof else length - dispatcher.max_keyword_length + 1
        if self._scan_from - base >= holdback:
            return
        native = self._native
        if (
            native is None
            or native.dispatcher is not dispatcher
            or native.count != len(self._streams)
        ):
            native = self._native = _NativeStep(
                dispatcher, self.prefilters, self._accel
            )
        streams = self._streams
        detached = self._detached
        state = native.state
        spans = native.spans
        programs = native.programs
        for index, stream in enumerate(streams):
            block = 16 * index
            if detached[index]:
                for slot in range(block, block + 16):
                    state[slot] = 0
            else:
                stream.export_native(state, block, programs[index])
        scanned_from = self._scan_from
        position = self._scan_from
        step_events = self._accel.step_events
        status = 0
        next_from = base + holdback
        tokens = 0
        try:
            while True:
                status, next_from, span_count, tokens_delta = step_events(
                    capsule, native.capsules, state, native.prefix_starts,
                    native.prefix_ids, text, base, position, eof, spans,
                )
                tokens += tokens_delta
                for cursor in range(0, 3 * span_count, 3):
                    streams[spans[cursor]].emit_span(
                        spans[cursor + 1], spans[cursor + 2]
                    )
                if status == 4:  # span buffer full: apply and keep sweeping
                    position = next_from
                    continue
                break
        finally:
            self.scan_stats.tokens_matched += tokens
            for index, stream in enumerate(streams):
                if not detached[index]:
                    stream.import_native(state, 16 * index, programs[index])
                    self._resubscribe(index)
        if status == 0:
            self._scan_from = base + holdback
            self.scan_stats.char_comparisons += self._scan_from - scanned_from
            return
        if status == 1:
            # A decision needs input beyond the window: suspend on it.
            self._scan_from = next_from
            self.scan_stats.char_comparisons += next_from - scanned_from
            return
        if status == 2:
            raise RuntimeFilterError(
                f"tag starting at offset {next_from} is never closed; the "
                "document is not well formed"
            )
        # status == 3: a transition the tables cannot take.  The kernel
        # stopped *before* mutating any stream on the offending event;
        # the Python path replays it with full registry order and raises
        # the identical transition error.
        self._scan_from = next_from
        self._process_accel(capsule)

    def _process_accel(self, capsule) -> None:
        """The :meth:`_process_pure` pass with the scan sweep done in C.

        ``repro._accel.scan_events`` performs the occurrence sweep, the
        extends-check and the end-of-tag scan subscription-blind, filling a
        reusable flat int64 event array; this loop keeps everything dynamic
        -- subscription probes, dispatch, resubscription, prefix expansion
        -- in Python, processing events in the same order and with the
        same early-return points as the pure loop.
        """
        window = self._window
        streams = self._streams
        subscribers = self._subscribers
        dispatcher = self._dispatcher
        keywords = dispatcher.keywords
        keyword_lengths = dispatcher.keyword_lengths
        prefix_lists = dispatcher.prefixes_by_index
        get_subscribed = subscribers.get
        resubscribe = self._resubscribe
        scan_stats = self.scan_stats
        text, base = window.view()
        eof = window.eof
        length = len(text)
        holdback = length if eof else length - dispatcher.max_keyword_length + 1
        if self._scan_from - base >= holdback:
            return
        scanned_from = self._scan_from
        events = self._events
        if events is None:
            events = self._events = array("q", bytes(8 * 4 * 512))
        scan_events = self._accel.scan_events
        position = self._scan_from
        tokens = 0
        try:
            while True:
                count, next_from, done = scan_events(
                    capsule, text, base, position, eof, events
                )
                for cursor in range(0, 4 * count, 4):
                    keyword_id = events[cursor + 1]
                    keyword = keywords[keyword_id]
                    subscribed = get_subscribed(keyword)
                    if subscribed:
                        start = events[cursor]
                        flags = events[cursor + 3]
                        if flags & 4:
                            # The extends verdict needs input beyond the
                            # window.
                            self._scan_from = start
                            scan_stats.char_comparisons += start - scanned_from
                            return
                        if flags & 1:
                            # False match: the tag name extends the keyword.
                            for owner in subscribed:
                                streams[owner].push_false_match(keyword, start)
                        elif (closing := events[cursor + 2]) < 0:
                            if eof:
                                raise RuntimeFilterError(
                                    f"tag starting at offset {start} is never "
                                    "closed; the document is not well formed"
                                )
                            self._scan_from = start
                            scan_stats.char_comparisons += start - scanned_from
                            return
                        else:
                            tokens += 1
                            scan_chars = (
                                closing - (start + keyword_lengths[keyword_id]) + 1
                            )
                            bachelor = flags & 2
                            changed = [
                                owner for owner in subscribed
                                if streams[owner].push_token(
                                    keyword, start, closing, bachelor,
                                    scan_chars,
                                )
                            ]
                            for owner in changed:
                                resubscribe(owner)
                        prefixes = prefix_lists[keyword_id]
                    elif not (prefixes := prefix_lists[keyword_id]):
                        continue
                    else:
                        start = events[cursor]
                    for prefix in prefixes:
                        prefix_subscribed = get_subscribed(prefix)
                        if prefix_subscribed:
                            for owner in prefix_subscribed:
                                streams[owner].push_false_match(prefix, start)
                if done:
                    break
                position = next_from  # the event buffer filled: keep sweeping
            self._scan_from = base + holdback
            scan_stats.char_comparisons += self._scan_from - scanned_from
        finally:
            scan_stats.tokens_matched += tokens

    def _process_pure(self) -> None:
        """Pure-Python union scan (the reference of :meth:`_process_accel`)."""
        window = self._window
        streams = self._streams
        subscribers = self._subscribers
        dispatcher = self._dispatcher
        prefixes = dispatcher.prefixes
        scan_stats = self.scan_stats
        name_byte = is_name_byte
        text, base = window.view()
        eof = window.eof
        length = len(text)
        holdback = length if eof else length - dispatcher.max_keyword_length + 1
        low = self._scan_from - base
        if low >= holdback:
            return
        scanned_from = self._scan_from
        for match in dispatcher.pattern.finditer(text, low):
            local_start = match.start()
            if local_start >= holdback:
                break
            keyword = match.group()
            start = local_start + base
            subscribed = subscribers.get(keyword)
            if subscribed:
                after = local_start + len(keyword)
                if after >= length and not eof:
                    self._scan_from = start
                    scan_stats.char_comparisons += start - scanned_from
                    return
                # A byte >= 0x80 is part of a multi-byte UTF-8 name
                # character, so the verdict never depends on sequence
                # boundaries falling inside the buffered window.
                extends = after < length and name_byte(text[after])
                if extends:
                    # False match: the tag name extends the keyword.
                    for owner in subscribed:
                        streams[owner].push_false_match(keyword, start)
                else:
                    # Valid token: locate the closing '>' outside quotes.
                    closing = text.find(b">", after)
                    if closing >= 0 and (
                        text.find(b'"', after, closing) >= 0
                        or text.find(b"'", after, closing) >= 0
                    ):
                        closing = self._tag_end_with_quotes(text, after)
                    if closing < 0:
                        if eof:
                            raise RuntimeFilterError(
                                f"tag starting at offset {start} is never "
                                "closed; the document is not well formed"
                            )
                        self._scan_from = start
                        scan_stats.char_comparisons += start - scanned_from
                        return
                    bachelor = closing > after and text[closing - 1] == 0x2F  # '/'
                    scan_stats.tokens_matched += 1
                    # scan_chars: every character a private end-of-tag scan
                    # reads is counted exactly once -- the span itself.
                    end = closing + base
                    scan_chars = closing - after + 1
                    changed = None
                    for owner in subscribed:
                        if streams[owner].push_token(
                            keyword, start, end, bachelor, scan_chars
                        ):
                            if changed is None:
                                changed = [owner]
                            else:
                                changed.append(owner)
                    if changed:
                        for owner in changed:
                            self._resubscribe(owner)
            # Union keywords that are prefixes of this occurrence co-occur
            # at its position and are always false matches there (the next
            # character belongs to this occurrence's tag name).
            for prefix in prefixes[keyword]:
                prefix_subscribed = subscribers.get(prefix)
                if prefix_subscribed:
                    for owner in prefix_subscribed:
                        streams[owner].push_false_match(prefix, start)
        self._scan_from = base + holdback
        # Counted on exit from the actual scan advance, so a suspended and
        # re-run region is never double-counted.
        scan_stats.char_comparisons += self._scan_from - scanned_from

    @staticmethod
    def _tag_end_with_quotes(text, position: int) -> int:
        """Window-local closing-``>`` scan skipping quoted attribute values.

        Mirrors the searching runtime's end-of-tag scan; returns -1 when the
        tag is still incomplete in the buffered bytes.  Vectorized: candidate
        ``>`` and quote positions come from C-level ``find`` instead of a
        per-byte loop.
        """
        cursor = position
        while True:
            gt = text.find(b">", cursor)
            if gt < 0:
                return -1
            dq = text.find(b'"', cursor, gt)
            sq = text.find(b"'", cursor, gt)
            if dq < 0 and sq < 0:
                return gt
            if dq >= 0 and (sq < 0 or dq < sq):
                quote_end = text.find(b'"', dq + 1)
            else:
                quote_end = text.find(b"'", sq + 1)
            if quote_end < 0:
                return -1
            cursor = quote_end + 1

    def _resubscribe(self, index: int) -> None:
        """Refresh one stream's keyword subscription after a transition."""
        stream = self._streams[index]
        new = stream.subscription_keywords()
        old = self._subscribed[index]
        if new == old:
            return
        key = (old, new)
        diff = self._diff_cache.get(key)
        if diff is None:
            diff = self._diff_cache[key] = (
                tuple(keyword for keyword in old if keyword not in new),
                tuple(keyword for keyword in new if keyword not in old),
            )
        removals, additions = diff
        subscribers = self._subscribers
        for keyword in removals:
            subscribers[keyword].remove(index)
        for keyword in additions:
            subscribers.setdefault(keyword, []).append(index)
        self._subscribed[index] = new

    # ------------------------------------------------------------------
    # Buffer retention
    # ------------------------------------------------------------------
    def _trim(self) -> None:
        """Flush copy regions up to the dispatch frontier and discard input.

        The frontier is the scan resume offset: every token starting below
        it has been dispatched, so open copy regions can be emitted that far
        and the window only needs to retain the un-scanned tail plus
        un-flushed copy content.
        """
        window = self._window
        frontier = min(self._scan_from, window.end)
        floor = frontier
        detached = self._detached
        for index, stream in enumerate(self._streams):
            if detached[index]:
                continue
            stream.flush_copy(frontier)
            stream_floor = stream.keep_floor()
            if stream_floor is not None and stream_floor < floor:
                floor = stream_floor
        window.discard_to(floor)
