"""Shared-scan multi-query engine: one document pass feeding N prefilters.

The point of SMP prefiltering is that XPath evaluation collapses to keyword
scanning -- and keyword scanning amortises: one automaton pass over the
union vocabulary of N compiled queries costs one document scan regardless of
N.  :class:`MultiQueryEngine` exploits that.  It compiles every query to its
own :class:`~repro.core.prefilter.SmpPrefilter` plan (shared through the
plan cache), unions their keyword sets into one
:class:`~repro.matching.dispatch.KeywordDispatcher` (whose trie-compiled
union pattern is an Aho-Corasick-style automaton executed in C), and drives
one :class:`~repro.core.runtime.DrivenStream` per query from the shared hit
stream::

    engine = MultiQueryEngine(dtd, [q2, q5, q7], backend="native")
    run = engine.filter_file("medline.xml")
    for label, output, stats in run:
        ...

Equivalence: each driven stream replays exactly the decisions its private
:class:`~repro.core.runtime.RuntimeStream` would have made, so per-query
output and the structural statistics (tokens matched/copied, regions,
initial jumps, local scans, sizes) are byte-identical to N independent
:class:`~repro.core.prefilter.FilterSession` runs.  What changes is the
cost: the character-scanning work happens once, on the shared scan, instead
of once per query -- per-query matcher counters (comparisons, shifts) are
therefore zero and the engine-level :attr:`MultiQuerySession.scan_stats`
carries the once-paid scan cost.

Two dispatch refinements keep the per-hit interpreter cost low:

* *Dynamic subscriptions.*  A hit is resolved (validity check, end-of-tag
  scan) and dispatched only when some stream's **current** state searches
  its keyword; everything else is skipped after one dictionary probe -- the
  shared-scan analogue of the searching runtimes skipping irrelevant
  regions.
* *Free prefix expansion.*  Union keywords that are prefixes of a scanned
  hit co-occur at its position but are always false matches (the next
  character belongs to the longer keyword's tag name), so their rejection
  bookkeeping is dispatched without reading the text.

Like the single-query session, a :class:`MultiQuerySession` is incremental
and *byte-native*: feed arbitrary ``bytes`` chunks (``str`` chunks are
UTF-8 encoded on entry), the union automaton is a ``bytes`` pattern running
directly on the buffered wire/disk representation, and memory stays
O(chunk + carry window) where the carry window covers the suspended scan
tail plus un-flushed copy regions across all queries.  Only the bytes each
query actually copies to output are ever decoded (text mode) -- or none at
all (``binary=True``).
"""

from __future__ import annotations

import time
import tracemalloc
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.prefilter import SmpPrefilter
from repro.core.runtime import AnySink, DrivenStream
from repro.core.sources import file_chunks, open_mmap
from repro.core.stats import CompilationStatistics, RunStatistics
from repro.core.stream import DEFAULT_CHUNK_SIZE, ChunkCursor, iter_chunks
from repro.core.tables import RuntimeTables
from repro.dtd.model import Dtd
from repro.errors import QueryError, RuntimeFilterError
from repro.matching.dispatch import KeywordDispatcher
from repro.projection.extraction import QuerySpec, extract_paths_from_xpath
from repro.xml.escape import is_name_byte


@dataclass
class MultiQueryRun:
    """The result of filtering one document against N queries."""

    labels: list[str]
    outputs: list[str]
    stats: list[RunStatistics]
    scan_stats: RunStatistics
    compilations: list[CompilationStatistics] = field(default_factory=list)

    def __iter__(self):
        return iter(zip(self.labels, self.outputs, self.stats))


def _all_keywords(tables: RuntimeTables) -> set[bytes]:
    """Every UTF-8 keyword a runtime can search for, across all its states."""
    keywords: set[bytes] = set()
    for vocabulary in tables.vocabulary_bytes.values():
        keywords.update(vocabulary)
    return keywords


class MultiQueryEngine:
    """Compile N queries into one shared-scan filtering plan.

    Parameters
    ----------
    dtd:
        The common schema of the incoming documents.
    queries:
        XPath strings (projection paths are extracted automatically),
        workload :class:`QuerySpec` objects, or prebuilt
        :class:`SmpPrefilter` plans -- mixed freely.
    backend:
        Matcher backend of the per-query plans (``"native"`` is the
        wall-clock oriented default); the shared scan itself runs on the
        backend-independent union automaton.
    use_plan_cache:
        Share compiled plans through :meth:`SmpPrefilter.cached`, so
        constructing several engines over overlapping query sets compiles
        each query once.

    The engine is immutable after construction; open one
    :class:`MultiQuerySession` per document (any number concurrently).
    """

    def __init__(
        self,
        dtd: Dtd,
        queries: Sequence["str | QuerySpec | SmpPrefilter"],
        *,
        backend: str = "native",
        use_plan_cache: bool = True,
    ) -> None:
        if not queries:
            raise QueryError("MultiQueryEngine needs at least one query")
        self.dtd = dtd
        self.backend = backend
        self.labels: list[str] = []
        self.prefilters: list[SmpPrefilter] = []
        for index, query in enumerate(queries):
            if isinstance(query, SmpPrefilter):
                label = f"Q{index + 1}"
                plan = query
            elif isinstance(query, QuerySpec):
                label = query.name
                plan = (
                    SmpPrefilter.cached_for_query(dtd, query, backend=backend)
                    if use_plan_cache
                    else SmpPrefilter.compile_for_query(dtd, query, backend=backend)
                )
            else:
                label = str(query)
                compile_plan = (
                    SmpPrefilter.cached if use_plan_cache else SmpPrefilter.compile
                )
                plan = compile_plan(
                    dtd,
                    extract_paths_from_xpath(str(query)),
                    backend=backend,
                    add_default_paths=False,
                )
            self.labels.append(label)
            self.prefilters.append(plan)
        #: Owner index -> every UTF-8 keyword that query can search for.
        self.vocabularies: dict[int, set[bytes]] = {
            index: _all_keywords(plan.tables)
            for index, plan in enumerate(self.prefilters)
        }
        #: Shared, immutable: owners table + union scan automaton.
        self.dispatcher = KeywordDispatcher(self.vocabularies, backend=backend)

    # ------------------------------------------------------------------
    # Sessions
    # ------------------------------------------------------------------
    def session(
        self,
        *,
        sinks: Sequence[AnySink | None] | None = None,
        binary: bool = False,
    ) -> "MultiQuerySession":
        """Open a streaming session for one document.

        ``sinks`` optionally routes each query's projected fragments to its
        own callback (one entry per query, ``None`` entries accumulate); the
        per-feed return values are then empty for those queries.  With
        ``binary=True`` every output channel carries raw projected bytes.
        """
        return MultiQuerySession(self, sinks=sinks, binary=binary)

    # ------------------------------------------------------------------
    # One-shot entry points
    # ------------------------------------------------------------------
    def filter_document(
        self, text: str, *, measure_memory: bool = False
    ) -> MultiQueryRun:
        """Filter a whole in-memory document against every query."""
        return self.filter_stream([text], measure_memory=measure_memory)

    def filter_bytes(
        self, data: bytes, *, measure_memory: bool = False, binary: bool = True
    ) -> MultiQueryRun:
        """Filter a whole in-memory UTF-8 byte document (byte-native path)."""
        return self.filter_stream(
            [data], measure_memory=measure_memory, binary=binary
        )

    def filter_file(
        self,
        path: str,
        *,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        sinks: Sequence[AnySink | None] | None = None,
        measure_memory: bool = False,
        binary: bool = False,
    ) -> MultiQueryRun:
        """Filter a document stored on disk, reading binary ``chunk_size``
        chunks (the input is never decoded)."""
        return self.filter_stream(
            file_chunks(path, chunk_size),
            chunk_size=chunk_size,
            sinks=sinks,
            measure_memory=measure_memory,
            binary=binary,
        )

    def filter_mmap(
        self,
        path: str,
        *,
        sinks: Sequence[AnySink | None] | None = None,
        measure_memory: bool = False,
        binary: bool = False,
    ) -> MultiQueryRun:
        """Filter a memory-mapped document: the shared scan runs directly
        over the mapped pages and only projected slices reach the heap."""
        with open_mmap(path) as mapping:
            return self.filter_stream(
                [mapping],
                sinks=sinks,
                measure_memory=measure_memory,
                binary=binary,
            )

    def filter_stream(
        self,
        chunks,
        *,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        sinks: Sequence[AnySink | None] | None = None,
        measure_memory: bool = False,
        binary: bool = False,
    ) -> MultiQueryRun:
        """Filter chunked input against every query in one document pass.

        Chunks may be ``bytes`` (native) or ``str`` (encoded on entry).
        """
        if measure_memory:
            tracemalloc.start()
        try:
            session = self.session(sinks=sinks, binary=binary)
            pieces: list[list] = [[] for _ in self.prefilters]
            for chunk in iter_chunks(chunks, chunk_size):
                for index, emitted in enumerate(session.feed(chunk)):
                    if emitted:
                        pieces[index].append(emitted)
            for index, emitted in enumerate(session.finish()):
                if emitted:
                    pieces[index].append(emitted)
        finally:
            if measure_memory:
                _, peak = tracemalloc.get_traced_memory()
                tracemalloc.stop()
        if measure_memory:
            session.scan_stats.peak_memory_bytes = peak
        empty = b"" if binary else ""
        return MultiQueryRun(
            labels=list(self.labels),
            outputs=[empty.join(fragments) for fragments in pieces],
            stats=session.stats,
            scan_stats=session.scan_stats,
            compilations=[plan.compilation for plan in self.prefilters],
        )


class MultiQuerySession:
    """One shared-scan filtering run of N queries over one document.

    The session owns the shared :class:`ChunkCursor` window and one
    :class:`DrivenStream` per query; the engine's dispatcher provides the
    union automaton.  ``feed`` returns the list of newly emitted per-query
    outputs (empty strings when sinks are used); ``finish`` validates
    acceptance for every query and returns the remaining outputs.
    """

    def __init__(
        self,
        engine: MultiQueryEngine,
        sinks: Sequence[AnySink | None] | None = None,
        *,
        binary: bool = False,
    ) -> None:
        if sinks is not None and len(sinks) != len(engine.prefilters):
            raise QueryError(
                f"expected {len(engine.prefilters)} sinks, got {len(sinks)}"
            )
        self.engine = engine
        self.binary = binary
        self._window = ChunkCursor(binary=True)
        self._streams = [
            DrivenStream(
                plan.tables,
                self._window,
                sink=None if sinks is None else sinks[index],
                binary=binary,
            )
            for index, plan in enumerate(engine.prefilters)
        ]
        self._dispatcher = engine.dispatcher
        #: Absolute offset the union scan resumes from; every token
        #: starting below it has been dispatched.
        self._scan_from = 0
        self._finished = False
        #: Engine-level counters: the once-paid scanning cost plus timings.
        self.scan_stats = RunStatistics()
        # Dynamic subscriptions: byte keyword -> indices of streams whose
        # *current* state searches it.  Hits nobody subscribes to are
        # dropped after one dictionary probe, unresolved.
        self._subscribed: list[tuple[bytes, ...]] = [() for _ in self._streams]
        self._subscribers: dict[bytes, list[int]] = {}
        #: (old, new) vocabulary tuples -> (removals, additions); transitions
        #: cycle through few distinct state pairs, so diffs are computed once.
        self._diff_cache: dict[tuple, tuple[tuple[bytes, ...], tuple[bytes, ...]]] = {}
        for index in range(len(self._streams)):
            self._resubscribe(index)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def stats(self) -> list[RunStatistics]:
        """Per-query structural statistics (complete after ``finish``)."""
        return [stream.stats for stream in self._streams]

    @property
    def finished(self) -> bool:
        """True once :meth:`finish` has completed."""
        return self._finished

    @property
    def buffered_chars(self) -> int:
        """Input characters currently retained in the shared window."""
        return len(self._window)

    # ------------------------------------------------------------------
    # Feeding
    # ------------------------------------------------------------------
    def feed(self, chunk) -> list:
        """Process one input chunk (``bytes`` natively, ``str`` through the
        encode shim); returns the per-query emitted output."""
        if self._finished:
            raise RuntimeFilterError("cannot feed a finished multi-query session")
        if isinstance(chunk, str):
            chunk = chunk.encode("utf-8")
        started = time.perf_counter()
        length = len(chunk)
        self.scan_stats.input_size += length
        for stream in self._streams:
            stream.stats.input_size += length
        self._window.append(chunk)
        self._process()
        self._trim()
        self.scan_stats.run_seconds += time.perf_counter() - started
        return [stream.take_output() for stream in self._streams]

    def finish(self) -> list:
        """Signal end of input; returns the remaining per-query output.

        Raises :class:`RuntimeFilterError` when any query's automaton did
        not accept (the document does not conform to the DTD) or when the
        document ends inside a tag.
        """
        if self._finished:
            raise RuntimeFilterError("multi-query session is already finished")
        started = time.perf_counter()
        self._window.close()
        self._process()
        self._finished = True
        outputs = [stream.finish() for stream in self._streams]
        stats = self.scan_stats
        stats.output_size = sum(stream.stats.output_size for stream in self._streams)
        stats.run_seconds += time.perf_counter() - started
        return outputs

    # ------------------------------------------------------------------
    # The shared scan loop
    # ------------------------------------------------------------------
    def _process(self) -> None:
        """One union-automaton pass over the new window content.

        Per scanned occurrence: one subscription probe; for subscribed hits
        a validity check (one character), the shared end-of-tag scan (one
        C-level ``find`` plus two short quote probes on the fast path) and
        the dispatch to the subscribed streams; co-located prefix keywords
        are dispatched as false matches without reading the text.  Returns
        early -- leaving the scan position on the undecidable hit -- when a
        decision needs input beyond the buffered window.
        """
        window = self._window
        streams = self._streams
        subscribers = self._subscribers
        dispatcher = self._dispatcher
        prefixes = dispatcher.prefixes
        scan_stats = self.scan_stats
        name_byte = is_name_byte
        text, base = window.view()
        eof = window.eof
        length = len(text)
        holdback = length if eof else length - dispatcher.max_keyword_length + 1
        low = self._scan_from - base
        if low >= holdback:
            return
        scanned_from = self._scan_from
        for match in dispatcher.pattern.finditer(text, low):
            local_start = match.start()
            if local_start >= holdback:
                break
            keyword = match.group()
            start = local_start + base
            subscribed = subscribers.get(keyword)
            if subscribed:
                after = local_start + len(keyword)
                if after >= length and not eof:
                    self._scan_from = start
                    scan_stats.char_comparisons += start - scanned_from
                    return
                # A byte >= 0x80 is part of a multi-byte UTF-8 name
                # character, so the verdict never depends on sequence
                # boundaries falling inside the buffered window.
                extends = after < length and name_byte(text[after])
                if extends:
                    # False match: the tag name extends the keyword.
                    for owner in subscribed:
                        streams[owner].push_false_match(keyword, start)
                else:
                    # Valid token: locate the closing '>' outside quotes.
                    closing = text.find(b">", after)
                    if closing >= 0 and (
                        text.find(b'"', after, closing) >= 0
                        or text.find(b"'", after, closing) >= 0
                    ):
                        closing = self._tag_end_with_quotes(text, after)
                    if closing < 0:
                        if eof:
                            raise RuntimeFilterError(
                                f"tag starting at offset {start} is never "
                                "closed; the document is not well formed"
                            )
                        self._scan_from = start
                        scan_stats.char_comparisons += start - scanned_from
                        return
                    bachelor = closing > after and text[closing - 1] == 0x2F  # '/'
                    scan_stats.tokens_matched += 1
                    # scan_chars: every character a private end-of-tag scan
                    # reads is counted exactly once -- the span itself.
                    end = closing + base
                    scan_chars = closing - after + 1
                    changed = None
                    for owner in subscribed:
                        if streams[owner].push_token(
                            keyword, start, end, bachelor, scan_chars
                        ):
                            if changed is None:
                                changed = [owner]
                            else:
                                changed.append(owner)
                    if changed:
                        for owner in changed:
                            self._resubscribe(owner)
            # Union keywords that are prefixes of this occurrence co-occur
            # at its position and are always false matches there (the next
            # character belongs to this occurrence's tag name).
            for prefix in prefixes[keyword]:
                prefix_subscribed = subscribers.get(prefix)
                if prefix_subscribed:
                    for owner in prefix_subscribed:
                        streams[owner].push_false_match(prefix, start)
        self._scan_from = base + holdback
        # Counted on exit from the actual scan advance, so a suspended and
        # re-run region is never double-counted.
        scan_stats.char_comparisons += self._scan_from - scanned_from

    @staticmethod
    def _tag_end_with_quotes(text, position: int) -> int:
        """Window-local closing-``>`` scan skipping quoted attribute values.

        Mirrors the searching runtime's end-of-tag scan; returns -1 when the
        tag is still incomplete in the buffered bytes.
        """
        cursor = position
        length = len(text)
        while cursor < length:
            byte = text[cursor]
            if byte == 0x3E:  # '>'
                return cursor
            if byte == 0x22 or byte == 0x27:  # '"' / "'"
                quote_end = text.find(b'"' if byte == 0x22 else b"'", cursor + 1)
                if quote_end < 0:
                    return -1
                cursor = quote_end + 1
                continue
            cursor += 1
        return -1

    def _resubscribe(self, index: int) -> None:
        """Refresh one stream's keyword subscription after a transition."""
        stream = self._streams[index]
        new = stream.subscription_keywords()
        old = self._subscribed[index]
        if new == old:
            return
        key = (old, new)
        diff = self._diff_cache.get(key)
        if diff is None:
            diff = self._diff_cache[key] = (
                tuple(keyword for keyword in old if keyword not in new),
                tuple(keyword for keyword in new if keyword not in old),
            )
        removals, additions = diff
        subscribers = self._subscribers
        for keyword in removals:
            subscribers[keyword].remove(index)
        for keyword in additions:
            subscribers.setdefault(keyword, []).append(index)
        self._subscribed[index] = new

    # ------------------------------------------------------------------
    # Buffer retention
    # ------------------------------------------------------------------
    def _trim(self) -> None:
        """Flush copy regions up to the dispatch frontier and discard input.

        The frontier is the scan resume offset: every token starting below
        it has been dispatched, so open copy regions can be emitted that far
        and the window only needs to retain the un-scanned tail plus
        un-flushed copy content.
        """
        window = self._window
        frontier = min(self._scan_from, window.end)
        floor = frontier
        for stream in self._streams:
            stream.flush_copy(frontier)
            stream_floor = stream.keep_floor()
            if stream_floor is not None and stream_floor < floor:
                floor = stream_floor
        window.discard_to(floor)
