"""Run statistics of the SMP prefilter.

These mirror the columns of Table I and Table II in the paper: projected
size, number of runtime-DFA states (split into CW and BM states), average
forward-shift size, the percentage of characters skipped by initial jumps,
and the percentage of character comparisons relative to the document size.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CompilationStatistics:
    """Sizes and timings of the static analysis."""

    dtd_states: int = 0
    dtd_transitions: int = 0
    selected_states: int = 0
    runtime_states: int = 0
    cw_states: int = 0
    bm_states: int = 0
    compile_seconds: float = 0.0

    def states_label(self) -> str:
        """Format like the paper's ``States (CW+BM)`` column, e.g. ``9 (2 + 6)``."""
        return f"{self.runtime_states} ({self.cw_states} + {self.bm_states})"


@dataclass
class RunStatistics:
    """Counters of one prefiltering run."""

    input_size: int = 0
    output_size: int = 0
    char_comparisons: int = 0
    local_scan_chars: int = 0
    shifts: int = 0
    shift_total: int = 0
    initial_jump_chars: int = 0
    initial_jumps: int = 0
    tokens_matched: int = 0
    tokens_copied: int = 0
    regions_copied: int = 0
    run_seconds: float = 0.0
    peak_memory_bytes: int = 0
    #: Number of runs folded into this record that asked for the C token
    #: kernel (``delivery="accel"``) but ran the pure batched loop because
    #: ``repro._accel`` is not importable.  Excluded from :meth:`as_dict`:
    #: the degrade changes throughput, never output or paper counters, so
    #: delivery-equivalence comparisons must not see it.
    accel_degraded: int = 0

    # ------------------------------------------------------------------
    # Derived metrics (the paper's table columns)
    # ------------------------------------------------------------------
    @property
    def total_comparisons(self) -> int:
        """Character comparisons of the matchers plus local tag-end scans."""
        return self.char_comparisons + self.local_scan_chars

    @property
    def char_comparison_ratio(self) -> float:
        """``Char Comp. [%]`` of Table I/II: comparisons / document size."""
        if self.input_size == 0:
            return 0.0
        return 100.0 * self.total_comparisons / self.input_size

    @property
    def average_shift(self) -> float:
        """``avg Shift Size [char]``: mean forward shift of the matchers."""
        if self.shifts == 0:
            return 0.0
        return self.shift_total / self.shifts

    @property
    def initial_jump_ratio(self) -> float:
        """``Initial Jumps [%]``: characters skipped by table-J jumps."""
        if self.input_size == 0:
            return 0.0
        return 100.0 * self.initial_jump_chars / self.input_size

    @property
    def projection_ratio(self) -> float:
        """Output size / input size."""
        if self.input_size == 0:
            return 0.0
        return self.output_size / self.input_size

    @property
    def throughput_mb_per_second(self) -> float:
        """Input megabytes processed per second of run time."""
        if self.run_seconds <= 0.0:
            return 0.0
        return (self.input_size / 1_000_000.0) / self.run_seconds

    def merge(self, other: "RunStatistics") -> None:
        """Accumulate ``other`` into this record (corpus aggregation).

        All counters add up -- sizes, comparisons, shifts, jumps, tokens,
        regions and run time -- so the merge of per-document statistics
        equals the statistics of filtering the documents back to back; the
        traced peak takes the maximum (peaks do not add across documents).
        """
        self.input_size += other.input_size
        self.output_size += other.output_size
        self.char_comparisons += other.char_comparisons
        self.local_scan_chars += other.local_scan_chars
        self.shifts += other.shifts
        self.shift_total += other.shift_total
        self.initial_jump_chars += other.initial_jump_chars
        self.initial_jumps += other.initial_jumps
        self.tokens_matched += other.tokens_matched
        self.tokens_copied += other.tokens_copied
        self.regions_copied += other.regions_copied
        self.run_seconds += other.run_seconds
        self.peak_memory_bytes = max(self.peak_memory_bytes,
                                     other.peak_memory_bytes)
        self.accel_degraded += other.accel_degraded

    def export_state(self) -> dict:
        """Every counter as a flat dictionary (checkpoint serialization).

        Unlike :meth:`as_dict` (the benchmark view, which derives ratios and
        drops bookkeeping fields) this is a lossless snapshot:
        ``RunStatistics.from_state(stats.export_state())`` reproduces the
        record field for field.
        """
        return {
            "input_size": self.input_size,
            "output_size": self.output_size,
            "char_comparisons": self.char_comparisons,
            "local_scan_chars": self.local_scan_chars,
            "shifts": self.shifts,
            "shift_total": self.shift_total,
            "initial_jump_chars": self.initial_jump_chars,
            "initial_jumps": self.initial_jumps,
            "tokens_matched": self.tokens_matched,
            "tokens_copied": self.tokens_copied,
            "regions_copied": self.regions_copied,
            "run_seconds": self.run_seconds,
            "peak_memory_bytes": self.peak_memory_bytes,
            "accel_degraded": self.accel_degraded,
        }

    @classmethod
    def from_state(cls, state: dict) -> "RunStatistics":
        """Rebuild a record captured by :meth:`export_state`."""
        stats = cls()
        for name in (
            "input_size", "output_size", "char_comparisons",
            "local_scan_chars", "shifts", "shift_total",
            "initial_jump_chars", "initial_jumps", "tokens_matched",
            "tokens_copied", "regions_copied", "peak_memory_bytes",
            "accel_degraded",
        ):
            if name in state:
                setattr(stats, name, int(state[name]))
        stats.run_seconds = float(state.get("run_seconds", 0.0))
        return stats

    def copy(self) -> "RunStatistics":
        """An independent copy of the current counters."""
        return RunStatistics.from_state(self.export_state())

    def as_dict(self) -> dict[str, float]:
        """All metrics as a flat dictionary (used by the benchmark harness)."""
        return {
            "input_size": float(self.input_size),
            "output_size": float(self.output_size),
            "char_comparison_ratio": self.char_comparison_ratio,
            "average_shift": self.average_shift,
            "initial_jump_ratio": self.initial_jump_ratio,
            "projection_ratio": self.projection_ratio,
            "run_seconds": self.run_seconds,
            "throughput_mb_per_second": self.throughput_mb_per_second,
            "tokens_matched": float(self.tokens_matched),
            "tokens_copied": float(self.tokens_copied),
        }


@dataclass
class FilterRun:
    """The result of prefiltering one document."""

    output: str
    stats: RunStatistics
    compilation: CompilationStatistics = field(default_factory=CompilationStatistics)

    @property
    def output_size(self) -> int:
        """Size of the projected document in characters."""
        return len(self.output)
