"""The SMP runtime algorithm (Figure 4 of the paper).

The runtime switches between string-matching problems: in every automaton
state it first skips ``J[q]`` characters, then searches for the closest
keyword of the frontier vocabulary ``V[q]`` (Boyer-Moore for unary
vocabularies, Commentz-Walter otherwise), scans locally to the right for the
end of the matched tag, takes the transition ``A[q, token]`` and performs the
action ``T[q']``.  Bachelor tags are processed as an opening immediately
followed by a closing tag; tag names that are prefixes of longer tag names
are disambiguated during the end-of-tag scan.

Input contract: the document must be valid with respect to the DTD the tables
were compiled from, and -- like the paper's prototype -- must not hide markup
inside comments or CDATA sections (character data must escape ``<``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.stats import RunStatistics
from repro.core.tables import Action, RuntimeTables
from repro.dtd.automaton import CLOSE, OPEN, Symbol
from repro.errors import RuntimeFilterError
from repro.matching.base import MultiKeywordMatcher, SingleKeywordMatcher
from repro.matching.factory import make_matcher
from repro.xml.escape import is_name_char

_WHITESPACE = " \t\r\n"


@dataclass
class _MatchedTag:
    """A tag located in the input by the frontier search."""

    keyword: str
    symbol: Symbol
    start: int          # offset of '<'
    end: int            # offset of the final '>'
    is_bachelor: bool


class SmpRuntime:
    """Executes the runtime algorithm over documents held in strings.

    Parameters
    ----------
    tables:
        Compiled lookup tables (see :func:`repro.core.tables.build_tables`).
    backend:
        Matcher backend name (see :mod:`repro.matching.factory`); the paper's
        configuration (instrumented Boyer-Moore / Commentz-Walter) is the
        default.
    """

    def __init__(self, tables: RuntimeTables, backend: str = "instrumented") -> None:
        self.tables = tables
        self.backend = backend
        # The paper computes string-search structures lazily, when an
        # automaton state is first entered; the cache mirrors that.
        self._matchers: dict[int, SingleKeywordMatcher | MultiKeywordMatcher] = {}

    # ------------------------------------------------------------------
    # Matcher management
    # ------------------------------------------------------------------
    def _matcher(self, state: int) -> SingleKeywordMatcher | MultiKeywordMatcher | None:
        matcher = self._matchers.get(state)
        if matcher is None:
            vocabulary = self.tables.V(state)
            if not vocabulary:
                return None
            matcher = make_matcher(vocabulary, backend=self.backend)
            self._matchers[state] = matcher
        return matcher

    def reset_matcher_statistics(self) -> None:
        """Zero the statistics of all cached matchers."""
        for matcher in self._matchers.values():
            matcher.stats.reset()

    def _collect_matcher_statistics(self, stats: RunStatistics) -> None:
        for matcher in self._matchers.values():
            stats.char_comparisons += matcher.stats.comparisons
            stats.shifts += matcher.stats.shifts
            stats.shift_total += matcher.stats.shift_total

    # ------------------------------------------------------------------
    # Main entry point
    # ------------------------------------------------------------------
    def filter_text(self, text: str) -> tuple[str, RunStatistics]:
        """Prefilter ``text`` and return ``(projected document, statistics)``."""
        stats = RunStatistics(input_size=len(text))
        started = time.perf_counter()
        self.reset_matcher_statistics()

        tables = self.tables
        state = tables.initial_state
        cursor = 0
        length = len(text)
        output: list[str] = []
        copy_active = False
        copy_start = 0
        copy_tag = ""

        while not tables.is_final(state) and cursor < length:
            jump = tables.J(state)
            if jump:
                stats.initial_jumps += 1
                stats.initial_jump_chars += jump
                cursor += jump
            matcher = self._matcher(state)
            if matcher is None:
                raise RuntimeFilterError(
                    f"runtime state {state} has an empty frontier vocabulary but is "
                    "not final; the document does not conform to the DTD"
                )
            matched = self._locate_tag(text, cursor, state, matcher, stats)
            if matched is None:
                raise RuntimeFilterError(
                    "no frontier token found before end of input; the document "
                    "does not conform to the DTD the prefilter was compiled for"
                )
            stats.tokens_matched += 1

            if matched.is_bachelor:
                # Opening and closing behaviour one after the other (Figure 4).
                kind, tag = matched.symbol
                open_state = tables.A(state, (OPEN, tag))
                if open_state is None:
                    raise self._transition_error(state, (OPEN, tag), matched.start)
                close_state = tables.A(open_state, (CLOSE, tag))
                if close_state is None:
                    raise self._transition_error(open_state, (CLOSE, tag), matched.start)
                open_action = tables.T(open_state)
                close_action = tables.T(close_state)
                copy_active, copy_start, copy_tag = self._apply_bachelor_actions(
                    text, matched, open_action, close_action, output,
                    copy_active, copy_start, copy_tag, stats,
                )
                state = close_state
            else:
                next_state = tables.A(state, matched.symbol)
                if next_state is None:
                    raise self._transition_error(state, matched.symbol, matched.start)
                action = tables.T(next_state)
                copy_active, copy_start, copy_tag = self._apply_action(
                    text, matched, action, output,
                    copy_active, copy_start, copy_tag, stats,
                )
                state = next_state
            cursor = matched.end

        if not tables.is_final(state):
            raise RuntimeFilterError(
                "end of input reached before the runtime automaton accepted; "
                "the document does not conform to the DTD"
            )
        if copy_active:
            raise RuntimeFilterError(
                f"copy region for <{copy_tag}> was never closed; the document "
                "does not conform to the DTD"
            )

        self._collect_matcher_statistics(stats)
        result = "".join(output)
        stats.output_size = len(result)
        stats.run_seconds = time.perf_counter() - started
        return result, stats

    # ------------------------------------------------------------------
    # Token location
    # ------------------------------------------------------------------
    def _locate_tag(
        self,
        text: str,
        cursor: int,
        state: int,
        matcher: SingleKeywordMatcher | MultiKeywordMatcher,
        stats: RunStatistics,
    ) -> _MatchedTag | None:
        """Find the next frontier token at or after ``cursor``.

        Matches whose tag name merely extends the searched keyword (the
        ``Abstract`` / ``AbstractText`` case) are rejected and the search is
        resumed just past the false match.
        """
        tables = self.tables
        length = len(text)
        position = cursor
        while position < length:
            match = matcher.find(text, position)
            if match is None:
                return None
            keyword = match.keyword
            after = match.position + len(keyword)
            if after < length and is_name_char(text[after]):
                # A longer tag name, e.g. "<AbstractText" while scanning for
                # "<Abstract": resume just past the false match ().
                stats.local_scan_chars += 1
                position = match.position + 1
                continue
            symbol = tables.keyword_symbols[state][keyword]
            end, is_bachelor = self._scan_tag_end(text, after, stats)
            if end is None:
                return None
            return _MatchedTag(
                keyword=keyword,
                symbol=symbol,
                start=match.position,
                end=end,
                is_bachelor=is_bachelor and symbol[0] == OPEN,
            )
        return None

    def _scan_tag_end(
        self, text: str, position: int, stats: RunStatistics
    ) -> tuple[int | None, bool]:
        """Scan right for the closing ``>`` of a tag.

        Quoted attribute values are skipped so a ``>`` inside a value cannot
        terminate the scan early.  Returns the offset of ``>`` and whether
        the tag is a bachelor tag (``.../>``).
        """
        length = len(text)
        cursor = position
        while cursor < length:
            character = text[cursor]
            stats.local_scan_chars += 1
            if character == ">":
                is_bachelor = cursor > position and text[cursor - 1] == "/"
                return cursor, is_bachelor
            if character in ('"', "'"):
                closing = text.find(character, cursor + 1)
                if closing < 0:
                    return None, False
                stats.local_scan_chars += closing - cursor
                cursor = closing + 1
                continue
            cursor += 1
        return None, False

    # ------------------------------------------------------------------
    # Actions
    # ------------------------------------------------------------------
    def _apply_action(
        self,
        text: str,
        matched: _MatchedTag,
        action: Action,
        output: list[str],
        copy_active: bool,
        copy_start: int,
        copy_tag: str,
        stats: RunStatistics,
    ) -> tuple[bool, int, str]:
        kind, tag = matched.symbol
        if action is Action.COPY_ON:
            if not copy_active:
                return True, matched.start, tag
            return copy_active, copy_start, copy_tag
        if action is Action.COPY_OFF:
            if copy_active and tag == copy_tag:
                output.append(text[copy_start:matched.end + 1])
                stats.regions_copied += 1
                stats.tokens_copied += 1
                return False, 0, ""
            if not copy_active:
                # Asymmetric table entries can occur after determinisation;
                # degrade gracefully to copying the closing tag itself.
                output.append(text[matched.start:matched.end + 1])
                stats.tokens_copied += 1
            return copy_active, copy_start, copy_tag
        if action is Action.COPY_TAG:
            if not copy_active:
                output.append(text[matched.start:matched.end + 1])
                stats.tokens_copied += 1
            return copy_active, copy_start, copy_tag
        return copy_active, copy_start, copy_tag

    def _apply_bachelor_actions(
        self,
        text: str,
        matched: _MatchedTag,
        open_action: Action,
        close_action: Action,
        output: list[str],
        copy_active: bool,
        copy_start: int,
        copy_tag: str,
        stats: RunStatistics,
    ) -> tuple[bool, int, str]:
        """Apply the opening and closing actions of a bachelor tag.

        The bachelor tag is emitted at most once: a (copy on, copy off) pair
        degenerates to copying the tag, and a copy-tag action on either side
        also copies the tag.
        """
        if copy_active:
            # Inside an active copy region the bachelor tag is part of the
            # region and needs no individual treatment.
            return copy_active, copy_start, copy_tag
        wants_copy = (
            open_action in (Action.COPY_TAG, Action.COPY_ON)
            or close_action in (Action.COPY_TAG, Action.COPY_OFF)
        ) and not (open_action is Action.NOP and close_action is Action.NOP)
        if wants_copy:
            output.append(text[matched.start:matched.end + 1])
            stats.tokens_copied += 1
        return copy_active, copy_start, copy_tag

    # ------------------------------------------------------------------
    # Errors
    # ------------------------------------------------------------------
    def _transition_error(
        self, state: int, symbol: Symbol, position: int
    ) -> RuntimeFilterError:
        kind, tag = symbol
        rendering = f"<{tag}>" if kind == OPEN else f"</{tag}>"
        return RuntimeFilterError(
            f"no transition from runtime state {state} on token {rendering} "
            f"(input offset {position}); the document does not conform to the DTD"
        )
