"""The SMP runtime algorithm (Figure 4 of the paper) as a streaming machine.

The runtime switches between string-matching problems: in every automaton
state it first skips ``J[q]`` characters, then searches for the closest
keyword of the frontier vocabulary ``V[q]`` (Boyer-Moore for unary
vocabularies, Commentz-Walter otherwise), scans locally to the right for the
end of the matched tag, takes the transition ``A[q, token]`` and performs the
action ``T[q']``.  Bachelor tags are processed as an opening immediately
followed by a closing tag; tag names that are prefixes of longer tag names
are disambiguated during the end-of-tag scan.

Execution is *byte-native*: the canonical chunk type is ``bytes`` and every
offset is an absolute byte offset of the UTF-8 input stream.  The matcher
automata are compiled from UTF-8 keywords and run directly on the wire/disk
representation -- no ``bytes -> str`` decode ever happens on the hot path.
Feeding ``str`` chunks still works as a thin *encode shim* (the chunk is
UTF-8 encoded on entry), and in text mode (the default) the emitted
projection is decoded incrementally -- only the bytes actually copied to
output are ever decoded.  UTF-8 chunk boundaries need no special handling
here: a multi-byte sequence carries no ``<`` byte, so tag keywords can
neither start nor end inside one, and partial sequences simply ride along
in the carry-over window like any other undecided bytes.

Execution is also *incremental*: :meth:`SmpRuntime.stream` returns a
:class:`RuntimeStream` -- a resumable state machine with ``feed(chunk) ->
emitted output`` and ``finish()`` -- that holds only a bounded carry-over
window of the input (the longest suspended keyword search plus the longest
open tag, see :mod:`repro.core.stream`).  Keyword searches that hit the end
of the buffered window mid-candidate suspend through the matchers'
``find_chunk`` contract and resume once more input arrives, so every
byte-based statistic (comparisons, shifts, jumps, local scans) is
bit-identical no matter how the input is chunked.  :meth:`SmpRuntime.
filter_text` / :meth:`SmpRuntime.filter_bytes` are thin one-chunk wrappers
over the same machine.

A second execution mode serves the multi-query engine
(:mod:`repro.core.multi`): :class:`DrivenStream` runs the same Figure-4
transition/action machinery, but instead of searching the input itself it is
*driven* by the keyword occurrences an external shared scan located once for
all queries.  The driven stream replays exactly the
decisions a private :class:`RuntimeStream` would have made -- initial-jump
accounting, false-match rejection, transitions, copy actions -- so its
output and its structural statistics are byte-identical to an independent
run, while the byte-scanning work happens only once per document.

Input contract: the document must be valid with respect to the DTD the tables
were compiled from, and -- like the paper's prototype -- must not hide markup
inside comments or CDATA sections (character data must escape ``<``).
"""

from __future__ import annotations

import os
import time
import warnings
from array import array
from typing import Callable, NamedTuple, Union

from repro.accel import load_accel
from repro.core.sources import Utf8SlidingDecoder
from repro.core.stats import RunStatistics
from repro.core.stream import ChunkCursor
from repro.core.tables import Action, RuntimeTables
from repro.dtd.automaton import CLOSE, OPEN, Symbol
from repro.errors import CheckpointError, RuntimeFilterError
from repro.matching.base import (
    Match,
    MultiKeywordMatcher,
    PendingSearch,
    SingleKeywordMatcher,
)
from repro.matching.factory import make_matcher
from repro.xml.escape import is_name_byte

#: Output callback types: text mode delivers decoded ``str`` fragments,
#: binary mode the raw projected ``bytes``.
OutputSink = Callable[[str], None]
ByteOutputSink = Callable[[bytes], None]
AnySink = Union[OutputSink, ByteOutputSink]

#: Byte values of the structural characters the local scans compare.
_GT = 0x3E        # '>'
_SLASH = 0x2F     # '/'
_DQUOTE = 0x22    # '"'
_SQUOTE = 0x27    # "'"
#: Quote byte value -> one-byte needle for the cursor's C-level ``find``.
_QUOTE_NEEDLES = {_DQUOTE: b'"', _SQUOTE: b"'"}

#: Token-event delivery modes of :class:`RuntimeStream`:
#:
#: * ``"batched"`` -- the flat explicit-state drive loop: one tight Python
#:   loop per fed window instead of one generator round-trip per token.
#:   Issues the *identical* matcher ``find_chunk`` call sequence as the
#:   per-token path, so output and every statistic are byte-identical.
#: * ``"accel"`` -- the batched loop with the per-state token kernel of the
#:   optional ``repro._accel`` C extension (``"native"`` backend only;
#:   other backends fall back to the pure batched loop per state).
#: * ``"pertoken"`` -- the legacy generator machine, kept as the reference
#:   implementation the property suite compares against.
DELIVERIES = ("batched", "accel", "pertoken")


#: Once-per-process latch of the explicit-``"accel"``-unavailable warning:
#: every degraded stream records the fact in its statistics, but only the
#: first one warns (a corpus run would otherwise emit thousands).
_accel_degrade_warned = False


def reset_accel_degrade_warning() -> None:
    """Re-arm the once-per-process accel-degrade warning (test helper)."""
    global _accel_degrade_warned
    _accel_degrade_warned = False


def _warn_accel_degraded() -> None:
    global _accel_degrade_warned
    if not _accel_degrade_warned:
        _accel_degrade_warned = True
        warnings.warn(
            "delivery='accel' was requested but the repro._accel C "
            "extension is not importable in this build; falling back to "
            "the pure-Python 'batched' delivery (byte-identical output, "
            "lower throughput).  Warned once per process; each degraded "
            "run also sets RunStatistics.accel_degraded.",
            RuntimeWarning,
            stacklevel=3,
        )


def resolve_delivery(delivery: "str | None") -> str:
    """Resolve a delivery request to an effective mode.

    ``None`` selects ``"accel"`` when the C extension is importable (and
    ``REPRO_PURE`` is unset), else ``"batched"``; an explicit ``"accel"``
    request degrades to ``"batched"`` when the extension is unavailable,
    so call sites never have to probe the build themselves.  The explicit
    degrade emits a once-per-process :class:`RuntimeWarning` and is
    recorded on the run's :class:`~repro.core.stats.RunStatistics` as
    ``accel_degraded`` by the stream that resolves it.

    When no delivery is requested in code, the ``REPRO_DELIVERY``
    environment variable (``pertoken`` / ``batched`` / ``accel``) forces
    one -- mirroring ``REPRO_PURE`` -- so benchmarks and CI legs can pin
    a delivery without code changes.  A bogus value raises
    :class:`ValueError` naming the variable.
    """
    if delivery is None:
        forced = os.environ.get("REPRO_DELIVERY")
        if forced is not None and forced != "":
            if forced not in DELIVERIES:
                raise ValueError(
                    f"REPRO_DELIVERY={forced!r} is not a delivery; "
                    f"expected one of {DELIVERIES}"
                )
            delivery = forced
        else:
            return "accel" if load_accel() is not None else "batched"
    if delivery not in DELIVERIES:
        raise ValueError(
            f"unknown delivery {delivery!r}; expected one of {DELIVERIES}"
        )
    if delivery == "accel" and load_accel() is None:
        _warn_accel_degraded()
        return "batched"
    return delivery


#: Resume phases of the batched drive loop (what the generator machine keeps
#: in its frame, kept explicitly so a window's tokens run without yields).
_PH_TOKEN = 0    # top of the token loop: wait-for-input, jump, new search
_PH_SEARCH = 1   # frontier search in progress (``_pending`` may be set)
_PH_VERIFY = 2   # match found, awaiting the byte after the keyword
_PH_TAG = 3      # scanning right for the closing '>'
_PH_QUOTE = 4    # inside a quoted attribute value


def _freeze_state_value(value):
    """Turn a matcher's opaque resume state into checkpoint-safe data.

    The suspended-search contract (:class:`~repro.matching.base.
    PendingSearch`) keeps backend-specific state: plain ints (generic and
    native backends), tuples of ints, and tuples carrying a
    :class:`~repro.matching.base.Match` (Commentz-Walter's best-so-far).
    All of those serialise losslessly.  Anything else -- notably the live
    trie node the Aho-Corasick backend suspends on -- cannot travel to
    another process and raises :class:`CheckpointError`.
    """
    if value is None or isinstance(value, (int, str, bytes)):
        return value
    if isinstance(value, Match):
        return ["__m__", value.position, value.keyword, value.keyword_index]
    if isinstance(value, tuple):
        return ["__t__"] + [_freeze_state_value(item) for item in value]
    raise CheckpointError(
        f"suspended search state of type {type(value).__name__!r} is not "
        "serialisable; this matcher backend cannot checkpoint mid-search"
    )


def _thaw_state_value(value):
    if isinstance(value, list):
        if value and value[0] == "__m__":
            return Match(
                position=int(value[1]),
                keyword=value[2],
                keyword_index=int(value[3]),
            )
        if value and value[0] == "__t__":
            return tuple(_thaw_state_value(item) for item in value[1:])
        return tuple(_thaw_state_value(item) for item in value)
    return value


def _freeze_pending(pending: "PendingSearch | None"):
    if pending is None:
        return None
    return {
        "keep_from": pending.keep_from,
        "state": _freeze_state_value(pending.state),
    }


def _thaw_pending(value) -> "PendingSearch | None":
    if value is None:
        return None
    return PendingSearch(
        keep_from=int(value["keep_from"]),
        state=_thaw_state_value(value["state"]),
    )


class _MatchedTag(NamedTuple):
    """A tag located in the input by the frontier search."""

    keyword: bytes
    symbol: Symbol
    start: int          # byte offset of '<'
    end: int            # byte offset of the final '>'
    is_bachelor: bool


class SmpRuntime:
    """Executes the runtime algorithm over strings, bytes or chunked streams.

    Parameters
    ----------
    tables:
        Compiled lookup tables (see :func:`repro.core.tables.build_tables`).
    backend:
        Matcher backend name (see :mod:`repro.matching.factory`); the paper's
        configuration (instrumented Boyer-Moore / Commentz-Walter) is the
        default.

    One runtime serves one document at a time: the matcher statistics are
    shared across its streams.  For concurrent documents create one runtime
    per stream over the same (immutable) tables -- that is what the
    :class:`repro.core.prefilter.FilterSession` facade does.
    """

    def __init__(self, tables: RuntimeTables, backend: str = "instrumented") -> None:
        self.tables = tables
        self.backend = backend
        # The paper computes string-search structures lazily, when an
        # automaton state is first entered; the cache mirrors that.
        self._matchers: dict[int, SingleKeywordMatcher | MultiKeywordMatcher] = {}

    # ------------------------------------------------------------------
    # Matcher management
    # ------------------------------------------------------------------
    def _matcher(self, state: int) -> SingleKeywordMatcher | MultiKeywordMatcher | None:
        matcher = self._matchers.get(state)
        if matcher is None:
            vocabulary = self.tables.vocabulary_bytes.get(state, ())
            if not vocabulary:
                return None
            matcher = make_matcher(vocabulary, backend=self.backend)
            self._matchers[state] = matcher
        return matcher

    def reset_matcher_statistics(self) -> None:
        """Zero the statistics of all cached matchers."""
        for matcher in self._matchers.values():
            matcher.stats.reset()

    def _collect_matcher_statistics(self, stats: RunStatistics) -> None:
        for matcher in self._matchers.values():
            stats.char_comparisons += matcher.stats.comparisons
            stats.shifts += matcher.stats.shifts
            stats.shift_total += matcher.stats.shift_total

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def stream(
        self,
        sink: AnySink | None = None,
        *,
        binary: bool = False,
        delivery: "str | None" = None,
    ) -> "RuntimeStream":
        """Start a resumable filtering run over chunked input.

        When ``sink`` is given every projected fragment is delivered to it
        as soon as it is safe to emit and ``feed``/``finish`` return empty
        output; otherwise the fragments are returned from ``feed``.  With
        ``binary=True`` the output channel carries the projected bytes
        verbatim; the default text mode decodes the emitted bytes
        incrementally (and only those).  ``delivery`` selects the
        token-event delivery mode (see :data:`DELIVERIES`); the default
        picks the fastest available path, which is byte-identical in
        output and statistics to the per-token reference.
        """
        return RuntimeStream(self, sink=sink, binary=binary, delivery=delivery)

    def filter_text(self, text: str) -> tuple[str, RunStatistics]:
        """Prefilter ``text`` and return ``(projected document, statistics)``.

        Thin one-chunk wrapper over :meth:`stream`; all byte-based
        statistics are identical to a chunked run over the same input.
        """
        stream = self.stream()
        output = stream.feed(text)
        return output + stream.finish(), stream.stats

    def filter_bytes(self, data: bytes) -> tuple[bytes, RunStatistics]:
        """Prefilter UTF-8 ``data`` and return ``(projected bytes, stats)``.

        The byte-native one-shot path: no decode or encode happens at all;
        the output is a byte-exact subsequence of regions of ``data``.
        """
        stream = self.stream(binary=True)
        output = stream.feed(data)
        return output + stream.finish(), stream.stats


class _FilterStreamBase:
    """State and behaviour shared by the searching and the driven streams:

    the output channel (sink or accumulated fragments), the copy-region
    bookkeeping and the Figure-4 transition/action application.  Both
    subclasses read document bytes exclusively through the ``ChunkCursor``
    they were given, in absolute byte offsets.  Emission is byte-first:
    fragments are byte slices of the input window; a text-mode channel
    decodes them incrementally on delivery (output-only decode).
    """

    def __init__(
        self,
        tables: RuntimeTables,
        window: ChunkCursor,
        sink: AnySink | None,
        binary: bool = False,
    ) -> None:
        self._tables = tables
        self._window = window
        self._sink = sink
        self._binary = binary
        self._decoder = None if binary else Utf8SlidingDecoder()
        self.stats = RunStatistics()
        self._out: list[bytes] = []
        self._emitted_bytes = 0
        self._copy_active = False
        self._copy_tag = ""
        self._copy_emitted = 0
        self._finished = False

    @property
    def finished(self) -> bool:
        """True once :meth:`finish` has completed (or a feed failed)."""
        return self._finished

    @property
    def binary(self) -> bool:
        """True when the output channel carries raw bytes."""
        return self._binary

    @property
    def emitted_bytes(self) -> int:
        """Projected bytes emitted so far (sink-routed bytes included)."""
        return self._emitted_bytes

    # ------------------------------------------------------------------
    # Output channel
    # ------------------------------------------------------------------
    def _emit(self, fragment: bytes) -> None:
        if not fragment:
            return
        self._emitted_bytes += len(fragment)
        sink = self._sink
        if sink is None:
            self._out.append(fragment)
        elif self._binary:
            sink(fragment)
        else:
            text = self._decoder.decode(fragment)
            if text:
                sink(text)

    def _take_output(self):
        """Fragments emitted since the last call, as one ``bytes``/``str``."""
        if not self._out:
            return b"" if self._binary else ""
        output = b"".join(self._out)
        self._out.clear()
        if self._binary:
            return output
        return self._decoder.decode(output)

    def _flush_output(self):
        """Final :meth:`_take_output`: also drains the text decoder."""
        output = self._take_output()
        if not self._binary:
            tail = self._decoder.finish()
            if tail:
                if self._sink is not None:
                    self._sink(tail)
                else:
                    output += tail
        return output

    # ------------------------------------------------------------------
    # Checkpoint plumbing shared by both stream kinds
    # ------------------------------------------------------------------
    def _export_common(self, carry_low: "int | None" = None,
                       *, with_window: bool = True) -> dict:
        """The output-channel / copy-region / statistics part of a snapshot.

        ``carry_low`` bounds the carry-over bytes captured from the window
        (default: everything the window retains); ``with_window=False``
        omits the window entirely (driven streams share the session's
        window, which is snapshotted once at session level).
        """
        window = self._window
        snapshot = {
            "binary": self._binary,
            "stats": self.stats.export_state(),
            "emitted_bytes": self._emitted_bytes,
            "copy_active": self._copy_active,
            "copy_tag": self._copy_tag,
            "copy_emitted": self._copy_emitted,
            "out": [bytes(fragment) for fragment in self._out],
            "decoder": (
                None if self._binary else list(self._decoder.export_state())
            ),
            "finished": self._finished,
        }
        if with_window:
            low = window.base
            if carry_low is not None:
                low = max(window.base, min(carry_low, window.end))
            snapshot["window"] = {
                "base": low,
                "data": window.slice(low, window.end) if window.end > low else b"",
                "eof": window.eof,
            }
        return snapshot

    def _import_common(self, snapshot: dict, *, with_window: bool = True) -> None:
        if bool(snapshot["binary"]) != self._binary:
            captured = "binary" if snapshot["binary"] else "text"
            raise CheckpointError(
                f"checkpoint was captured in {captured} output mode; "
                "restore with the same mode"
            )
        if with_window:
            window_state = snapshot["window"]
            window = self._window
            window.rebase(int(window_state["base"]))
            data = window_state["data"]
            if data:
                window.append(bytes(data))
            if window_state["eof"]:
                window.close()
        self.stats = RunStatistics.from_state(snapshot["stats"])
        self._emitted_bytes = int(snapshot["emitted_bytes"])
        self._copy_active = bool(snapshot["copy_active"])
        self._copy_tag = str(snapshot["copy_tag"])
        self._copy_emitted = int(snapshot["copy_emitted"])
        self._out = [bytes(fragment) for fragment in snapshot["out"]]
        if not self._binary and snapshot.get("decoder") is not None:
            self._decoder.import_state(snapshot["decoder"])
        self._finished = bool(snapshot["finished"])

    # ------------------------------------------------------------------
    # Transitions and actions
    # ------------------------------------------------------------------
    def _transition(self, state: int, matched: _MatchedTag) -> int:
        """Take the transition for ``matched`` and apply its actions."""
        tables = self._tables
        if matched.is_bachelor:
            # Opening and closing behaviour one after the other (Figure 4).
            kind, tag = matched.symbol
            open_state = tables.A(state, (OPEN, tag))
            if open_state is None:
                raise self._transition_error(state, (OPEN, tag), matched.start)
            close_state = tables.A(open_state, (CLOSE, tag))
            if close_state is None:
                raise self._transition_error(open_state, (CLOSE, tag), matched.start)
            self._apply_bachelor_actions(
                matched, tables.T(open_state), tables.T(close_state)
            )
            return close_state
        next_state = tables.A(state, matched.symbol)
        if next_state is None:
            raise self._transition_error(state, matched.symbol, matched.start)
        self._apply_action(matched, tables.T(next_state))
        return next_state

    def _apply_action(self, matched: _MatchedTag, action: Action) -> None:
        window = self._window
        stats = self.stats
        kind, tag = matched.symbol
        if action is Action.COPY_ON:
            if not self._copy_active:
                self._copy_active = True
                self._copy_tag = tag
                self._copy_emitted = matched.start
            return
        if action is Action.COPY_OFF:
            if self._copy_active and tag == self._copy_tag:
                self._emit(window.slice(self._copy_emitted, matched.end + 1))
                stats.regions_copied += 1
                stats.tokens_copied += 1
                self._copy_active = False
                self._copy_tag = ""
                self._copy_emitted = 0
                return
            if not self._copy_active:
                # Asymmetric table entries can occur after determinisation;
                # degrade gracefully to copying the closing tag itself.
                self._emit(window.slice(matched.start, matched.end + 1))
                stats.tokens_copied += 1
            return
        if action is Action.COPY_TAG:
            if not self._copy_active:
                self._emit(window.slice(matched.start, matched.end + 1))
                stats.tokens_copied += 1

    def _apply_bachelor_actions(
        self, matched: _MatchedTag, open_action: Action, close_action: Action
    ) -> None:
        """Apply the opening and closing actions of a bachelor tag.

        The bachelor tag is emitted at most once: a (copy on, copy off) pair
        degenerates to copying the tag, and a copy-tag action on either side
        also copies the tag.
        """
        if self._copy_active:
            # Inside an active copy region the bachelor tag is part of the
            # region and needs no individual treatment.
            return
        wants_copy = (
            open_action in (Action.COPY_TAG, Action.COPY_ON)
            or close_action in (Action.COPY_TAG, Action.COPY_OFF)
        ) and not (open_action is Action.NOP and close_action is Action.NOP)
        if wants_copy:
            self._emit(self._window.slice(matched.start, matched.end + 1))
            self.stats.tokens_copied += 1

    # ------------------------------------------------------------------
    # Errors
    # ------------------------------------------------------------------
    def _transition_error(
        self, state: int, symbol: Symbol, position: int
    ) -> RuntimeFilterError:
        kind, tag = symbol
        rendering = f"<{tag}>" if kind == OPEN else f"</{tag}>"
        return RuntimeFilterError(
            f"no transition from runtime state {state} on token {rendering} "
            f"(input offset {position}); the document does not conform to the DTD"
        )

    def _unclosed_copy_error(self) -> RuntimeFilterError:
        return RuntimeFilterError(
            f"copy region for <{self._copy_tag}> was never closed; the document "
            "does not conform to the DTD"
        )

    def _incomplete_error(self) -> RuntimeFilterError:
        return RuntimeFilterError(
            "end of input reached before the runtime automaton accepted; "
            "the document does not conform to the DTD"
        )

    def _no_token_error(self) -> RuntimeFilterError:
        return RuntimeFilterError(
            "no frontier token found before end of input; the document "
            "does not conform to the DTD the prefilter was compiled for"
        )


class RuntimeStream(_FilterStreamBase):
    """One resumable execution of the Figure-4 algorithm.

    Feed the document in arbitrary chunks -- ``bytes`` natively, or ``str``
    through the encode shim::

        stream = runtime.stream()
        for chunk in chunks:
            emit(stream.feed(chunk))
        emit(stream.finish())
        stream.stats  # RunStatistics of the completed run

    Memory use is O(chunk + carry window): the stream retains only the
    input needed by a suspended keyword search, a partially scanned tag, or
    the un-emitted head of an active copy region.
    """

    def __init__(
        self,
        runtime: SmpRuntime,
        sink: AnySink | None = None,
        *,
        binary: bool = False,
        delivery: "str | None" = None,
    ) -> None:
        super().__init__(runtime.tables, ChunkCursor(binary=True), sink, binary)
        self._runtime = runtime
        self._keep_from = 0
        self._done = False
        self._failed = False
        runtime.reset_matcher_statistics()
        self._delivery = resolve_delivery(delivery)
        if delivery == "accel" and self._delivery != "accel":
            # Explicit request degraded because the extension is missing
            # (the non-native-backend fallback below is a documented
            # semantic, not a degradation, and stays unflagged).
            self.stats.accel_degraded = 1
        if self._delivery == "accel" and runtime.backend != "native":
            # The C token kernel replays the native backend's statistics
            # formulas; other backends run the pure batched loop.
            self._delivery = "batched"
        if self._delivery == "pertoken":
            #: Last checkpointable snapshot published by the generator and
            #: the resume state consumed at its (lazy) start.
            self._pt_snapshot: dict | None = None
            self._pt_resume: dict | None = None
            self._machine = self._run()
        else:
            self._machine = None
            # Explicit resume state of the batched drive loop.
            self._state = runtime.tables.initial_state
            self._phase = _PH_TOKEN
            self._cursor = 0          # next search origin ('>' of last token)
            self._matcher_obj = None  # matcher of the current search
            self._search_pos = 0      # current search position
            self._pending: PendingSearch | None = None
            self._match_pos = 0       # '<' offset of the current match
            self._keyword = b""
            self._tag_cursor = 0      # end-of-tag scan position
            self._quote = b""         # open quote needle (suspended skip)
            self._quote_from = 0      # quote-skip resume offset
            if self._delivery == "accel":
                self._accel_mod = load_accel()
                #: state -> (capsule, keywords, symbols, matcher) of the C
                #: token kernel (compiled lazily, like the matcher cache).
                self._accel_ctx: dict[int, tuple] = {}
                self._ctx = None      # context of the suspended token
                # C-side resume vector (absolute offsets / keyword index).
                self._c_phase = 0
                self._c_begin = 0
                self._c_pos = 0
                self._c_kwi = 0
                self._c_aux = 0
                self._c_quote = 0

    @property
    def delivery(self) -> str:
        """The effective token-event delivery mode of this stream."""
        return self._delivery

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    @property
    def buffered_bytes(self) -> int:
        """Number of input bytes currently retained in the window."""
        return len(self._window)

    @property
    def accepted(self) -> bool:
        """True once the runtime automaton reached a final state."""
        return self._done and not self._failed

    def feed(self, chunk):
        """Process one input chunk (``bytes`` or ``str``); returns the
        output emitted so far (``bytes`` in binary mode, ``str`` otherwise).
        """
        if self._finished:
            raise RuntimeFilterError("cannot feed a finished runtime stream")
        if isinstance(chunk, str):
            chunk = chunk.encode("utf-8")
        started = time.perf_counter()
        self.stats.input_size += len(chunk)
        borrowed = isinstance(chunk, (bytearray, memoryview))
        self._window.append(chunk)
        self._advance()
        if self._done:
            # The automaton accepted: trailing input (epilog whitespace,
            # comments) is ignored and must not accumulate in the window.
            self._keep_from = self._window.end
        self._trim()
        if borrowed:
            # A mutable chunk (recycled read buffer) may be overwritten by
            # the producer after this call: own the retained suffix now.
            self._window.seal()
        self.stats.run_seconds += time.perf_counter() - started
        return self._take_output()

    def finish(self):
        """Signal end of input; returns the remaining output.

        Raises :class:`RuntimeFilterError` when the input ended before the
        runtime automaton accepted (the document does not conform to the
        DTD the prefilter was compiled for).
        """
        if self._finished:
            raise RuntimeFilterError("runtime stream is already finished")
        started = time.perf_counter()
        self._window.close()
        self._advance()
        self._finished = True
        self._runtime._collect_matcher_statistics(self.stats)
        output = self._flush_output()
        self.stats.output_size = self._emitted_bytes
        self.stats.run_seconds += time.perf_counter() - started
        return output

    # ------------------------------------------------------------------
    # Machine driving
    # ------------------------------------------------------------------
    def _advance(self) -> None:
        if self._done:
            return
        try:
            if self._machine is not None:
                try:
                    next(self._machine)
                    return
                except StopIteration:
                    pass
            else:
                if self._delivery == "accel":
                    accepted = self._drive_accel()
                else:
                    accepted = self._drive()
                if not accepted:
                    return
            self._done = True
            self._keep_from = self._window.end
        except Exception:
            self._done = True
            self._failed = True
            self._finished = True
            raise

    def _trim(self) -> None:
        floor = self._keep_from
        if self._copy_active:
            # A suspended search may place its resume point beyond the data
            # received so far; the copy region can only be emitted up to the
            # bytes that actually arrived.
            flush_to = min(floor, self._window.end)
            if flush_to > self._copy_emitted:
                self._emit(self._window.slice(self._copy_emitted, flush_to))
                self._copy_emitted = flush_to
        self._window.discard_to(floor)

    # ------------------------------------------------------------------
    # Checkpoint: capture and restore
    # ------------------------------------------------------------------
    def export_state(self) -> dict:
        """Capture this stream's complete resume state as plain data.

        Valid at any feed boundary.  The batched and accel deliveries keep
        explicit resume fields, so the snapshot is exact; the per-token
        generator cannot be reified directly, so it *publishes* a snapshot
        at its two input-wait points (token boundary, suspended frontier
        search) and this method returns the last published one -- resuming
        from it replays at most the tail the original run had already
        processed past it, reproducing identical output and statistics.
        Matcher counters are folded in, so the captured statistics are
        self-contained.
        """
        if self._failed:
            raise CheckpointError("cannot checkpoint a failed stream")
        if self._delivery == "pertoken":
            snapshot = self._pt_snapshot
            if snapshot is None:
                snapshot = self._pt_initial()
            return dict(snapshot)
        stats = self.stats.copy()
        self._runtime._collect_matcher_statistics(stats)
        snapshot = self._export_common()
        snapshot["stats"] = stats.export_state()
        snapshot.update(
            kind="stream",
            delivery=self._delivery,
            input_offset=self.stats.input_size,
            state=self._state,
            phase=self._phase,
            cursor=self._cursor,
            done=self._done,
        )
        if self._delivery == "accel":
            snapshot["c"] = [
                self._c_phase, self._c_begin, self._c_pos,
                self._c_kwi, self._c_aux, self._c_quote,
            ]
        else:
            snapshot.update(
                search_pos=self._search_pos,
                match_pos=self._match_pos,
                keyword=self._keyword,
                tag_cursor=self._tag_cursor,
                quote=self._quote,
                quote_from=self._quote_from,
                pending=_freeze_pending(self._pending),
            )
        return snapshot

    def import_state(self, snapshot: dict) -> None:
        """Restore a snapshot captured by :meth:`export_state`.

        Must be called on a freshly constructed stream before any input is
        fed.  Token-boundary snapshots (phase ``TOKEN``) restore into any
        delivery; suspended-search snapshots travel between the per-token
        and batched loops (identical ``find_chunk`` contract); snapshots
        suspended inside the C kernel or the batched verify/tag/quote
        phases require the capturing delivery.
        """
        if snapshot.get("kind") != "stream":
            raise CheckpointError("snapshot is not a runtime-stream checkpoint")
        if self.stats.input_size or len(self._window) or self._window.base:
            raise CheckpointError(
                "import_state requires a freshly constructed stream"
            )
        phase = int(snapshot["phase"])
        delivery = snapshot.get("delivery")
        if phase != _PH_TOKEN and delivery != self._delivery:
            portable_search = (
                phase == _PH_SEARCH
                and delivery in ("pertoken", "batched")
                and self._delivery in ("pertoken", "batched")
            )
            if not portable_search:
                raise CheckpointError(
                    f"checkpoint was captured mid-token under delivery "
                    f"{delivery!r}; resume with the same delivery"
                )
        self._import_common(snapshot)
        state = int(snapshot["state"])
        cursor = int(snapshot["cursor"])
        self._done = bool(snapshot["done"])
        self._keep_from = self._window.base
        if self._delivery == "pertoken":
            resume = {"state": state, "cursor": cursor, "pending": None}
            if phase == _PH_SEARCH:
                resume["pending"] = _thaw_pending(snapshot.get("pending"))
                resume["search_pos"] = int(snapshot.get("search_pos", cursor))
            self._pt_resume = resume
            self._pt_snapshot = dict(snapshot)
            return
        self._state = state
        self._cursor = cursor
        self._phase = phase
        if phase == _PH_TOKEN:
            return
        if self._delivery == "accel":
            (
                self._c_phase, self._c_begin, self._c_pos,
                self._c_kwi, self._c_aux, self._c_quote,
            ) = (int(value) for value in snapshot["c"])
            ctx = self._accel_ctx.get(state)
            if ctx is None:
                ctx = self._accel_context(state)
            self._ctx = ctx
            return
        self._search_pos = int(snapshot.get("search_pos", cursor))
        self._match_pos = int(snapshot.get("match_pos", 0))
        self._keyword = bytes(snapshot.get("keyword", b"") or b"")
        self._tag_cursor = int(snapshot.get("tag_cursor", 0))
        quote = snapshot.get("quote", b"")
        self._quote = bytes(quote) if quote else b""
        self._quote_from = int(snapshot.get("quote_from", 0))
        self._pending = _thaw_pending(snapshot.get("pending"))
        self._matcher_obj = self._runtime._matcher(state)

    def _pt_initial(self) -> dict:
        """A pristine snapshot: resume re-runs the document from byte 0."""
        return {
            "kind": "stream",
            "delivery": "pertoken",
            "input_offset": 0,
            "state": self._runtime.tables.initial_state,
            "phase": _PH_TOKEN,
            "cursor": 0,
            "done": False,
            "binary": self._binary,
            "window": {"base": 0, "data": b"", "eof": False},
            "stats": RunStatistics().export_state(),
            "emitted_bytes": 0,
            "copy_active": False,
            "copy_tag": "",
            "copy_emitted": 0,
            "out": [],
            "decoder": None,
            "finished": False,
        }

    def _pt_snapshot_base(self, carry_low: int) -> dict:
        """Common part of a generator publish.

        Matcher counters are folded into the captured statistics, and the
        not-yet-collected output fragments are treated as *delivered*: the
        suspended ``feed()`` call returns them before any caller can
        observe the checkpoint, so they belong to the pre-crash output
        prefix (they are part of ``emitted_bytes``), not to the restored
        stream.  In text mode the captured decoder state is advanced past
        them accordingly.
        """
        stats = self.stats.copy()
        self._runtime._collect_matcher_statistics(stats)
        snapshot = self._export_common(carry_low)
        snapshot["stats"] = stats.export_state()
        if self._out:
            if not self._binary:
                simulated = Utf8SlidingDecoder()
                simulated.import_state(self._decoder.export_state())
                for fragment in self._out:
                    simulated.decode(fragment)
                snapshot["decoder"] = list(simulated.export_state())
            snapshot["out"] = []
        return snapshot

    def _pt_publish(self, state: int, cursor: int) -> None:
        """Publish a token-boundary snapshot (generator wait loop).

        Carry bytes are captured *now*: the live window may discard bytes
        below this snapshot's floor before the next publish, so deferring
        the copy to :meth:`export_state` would be unsound.
        """
        window = self._window
        carry_low = (
            self._copy_emitted if self._copy_active
            else min(cursor, window.end)
        )
        snapshot = self._pt_snapshot_base(carry_low)
        snapshot.update(
            kind="stream",
            delivery="pertoken",
            input_offset=window.end,
            state=state,
            phase=_PH_TOKEN,
            cursor=cursor,
            done=False,
        )
        self._pt_snapshot = snapshot

    def _pt_publish_search(self, state: int, position: int,
                           pending: PendingSearch) -> None:
        """Publish a suspended-frontier-search snapshot.

        Backends whose suspended state cannot leave the process (see
        :func:`_freeze_state_value`) skip the publish -- the previous
        snapshot stays valid, resume just replays a longer tail.
        """
        try:
            frozen = _freeze_pending(pending)
        except CheckpointError:
            return
        window = self._window
        carry_low = pending.keep_from
        if self._copy_active:
            carry_low = min(carry_low, self._copy_emitted)
        snapshot = self._pt_snapshot_base(carry_low)
        snapshot.update(
            kind="stream",
            delivery="pertoken",
            input_offset=window.end,
            state=state,
            phase=_PH_SEARCH,
            cursor=position,
            search_pos=position,
            match_pos=0,
            keyword=b"",
            tag_cursor=0,
            quote=b"",
            quote_from=0,
            pending=frozen,
            done=False,
        )
        self._pt_snapshot = snapshot

    # ------------------------------------------------------------------
    # Batched delivery: the flat explicit-state drive loop
    # ------------------------------------------------------------------
    def _token_transition(
        self,
        state: int,
        keyword: bytes,
        symbol: Symbol,
        start: int,
        end: int,
        bachelor: bool,
    ) -> int:
        """Take the transition for one accepted token and apply its action.

        The inlined per-token fast path of the drive loop (same semantics
        as :meth:`_transition` / :meth:`_apply_action`, minus the
        ``_MatchedTag`` allocation for the common non-bachelor case).
        """
        if bachelor and symbol[0] == OPEN:
            return self._transition(
                state, _MatchedTag(keyword, symbol, start, end, True)
            )
        tables = self._tables
        next_state = tables.transition.get(state, {}).get(symbol)
        if next_state is None:
            raise self._transition_error(state, symbol, start)
        action = tables.actions.get(next_state)
        if action is not None and action is not Action.NOP:
            stats = self.stats
            if action is Action.COPY_ON:
                if not self._copy_active:
                    self._copy_active = True
                    self._copy_tag = symbol[1]
                    self._copy_emitted = start
            elif action is Action.COPY_OFF:
                if self._copy_active and symbol[1] == self._copy_tag:
                    self._emit(self._window.slice(self._copy_emitted, end + 1))
                    stats.regions_copied += 1
                    stats.tokens_copied += 1
                    self._copy_active = False
                    self._copy_tag = ""
                    self._copy_emitted = 0
                elif not self._copy_active:
                    # Asymmetric table entries degrade gracefully to
                    # copying the closing tag itself.
                    self._emit(self._window.slice(start, end + 1))
                    stats.tokens_copied += 1
            elif not self._copy_active:  # Action.COPY_TAG
                self._emit(self._window.slice(start, end + 1))
                stats.tokens_copied += 1
        return next_state

    def _drive(self) -> bool:
        """Run the Figure-4 loop over the buffered window without yields.

        The explicit-state twin of :meth:`_run`: one call consumes every
        token decidable from the buffered input in a single tight loop,
        suspends by returning ``False`` (resume state held in instance
        fields, phase constants ``_PH_*``) and returns ``True`` once the
        automaton accepted.  It issues the *identical* matcher
        ``find_chunk`` call sequence and the identical per-span
        ``local_scan_chars`` accounting as the per-token generator, so
        output and every statistic are byte-identical for any chunking.
        """
        runtime = self._runtime
        tables = runtime.tables
        is_final = tables.is_final
        jumps = tables.jumps
        keyword_symbols = tables.keyword_symbols_bytes
        stats = self.stats
        window = self._window
        find = window.find
        text, tbase = window.view()
        wend = window.end
        eof = window.eof
        state = self._state
        phase = self._phase
        try:
            while True:
                if phase == _PH_TOKEN:
                    if is_final(state):
                        if self._copy_active:
                            raise self._unclosed_copy_error()
                        return True
                    cursor = self._cursor
                    if cursor >= wend:
                        if eof:
                            raise self._incomplete_error()
                        self._keep_from = cursor
                        return False
                    jump = jumps.get(state, 0)
                    if jump:
                        stats.initial_jumps += 1
                        stats.initial_jump_chars += jump
                        cursor += jump
                    matcher = runtime._matcher(state)
                    if matcher is None:
                        raise RuntimeFilterError(
                            f"runtime state {state} has an empty frontier "
                            "vocabulary but is not final; the document does "
                            "not conform to the DTD"
                        )
                    self._matcher_obj = matcher
                    self._search_pos = cursor
                    self._pending = None
                    phase = _PH_SEARCH

                if phase == _PH_SEARCH:
                    outcome = self._matcher_obj.find_chunk(
                        text,
                        tbase,
                        self._search_pos,
                        wend,
                        at_eof=eof,
                        pending=self._pending,
                    )
                    if isinstance(outcome, PendingSearch):
                        self._pending = outcome
                        self._keep_from = outcome.keep_from
                        return False
                    if outcome is None:
                        raise self._no_token_error()
                    self._pending = None
                    self._match_pos = outcome.position
                    self._keyword = outcome.keyword
                    phase = _PH_VERIFY

                if phase == _PH_VERIFY:
                    after = self._match_pos + len(self._keyword)
                    if after >= wend and not eof:
                        self._keep_from = self._match_pos
                        return False
                    if after < wend and is_name_byte(text[after - tbase]):
                        # A longer tag name ("<AbstractText" while scanning
                        # for "<Abstract"): resume past the false match.
                        stats.local_scan_chars += 1
                        self._search_pos = self._match_pos + 1
                        self._pending = None
                        phase = _PH_SEARCH
                        continue
                    self._tag_cursor = after
                    phase = _PH_TAG

                if phase == _PH_QUOTE:
                    closing = find(self._quote, self._quote_from)
                    if closing < 0:
                        if eof:
                            raise self._no_token_error()
                        self._quote_from = wend
                        self._keep_from = self._match_pos
                        return False
                    self._tag_cursor = closing + 1
                    phase = _PH_TAG

                # _PH_TAG: scan right for the closing '>' (quote-aware).
                cursor = self._tag_cursor
                while True:
                    gt = find(b">", cursor)
                    if gt < 0:
                        if eof:
                            raise self._no_token_error()
                        self._tag_cursor = cursor
                        self._keep_from = self._match_pos
                        phase = _PH_TAG
                        return False
                    dq = find(b'"', cursor, gt)
                    sq = find(b"'", cursor, gt)
                    if dq < 0 and sq < 0:
                        end = gt
                        break
                    if dq >= 0 and (sq < 0 or dq < sq):
                        quote_at, needle = dq, b'"'
                    else:
                        quote_at, needle = sq, b"'"
                    closing = find(needle, quote_at + 1)
                    if closing < 0:
                        if eof:
                            raise self._no_token_error()
                        self._quote = needle
                        self._quote_from = wend
                        self._keep_from = self._match_pos
                        phase = _PH_QUOTE
                        return False
                    cursor = closing + 1

                # Token complete: transition, action, next search origin.
                keyword = self._keyword
                start = self._match_pos
                after = start + len(keyword)
                stats.local_scan_chars += end - after + 1
                bachelor = end > after and text[end - 1 - tbase] == _SLASH
                stats.tokens_matched += 1
                state = self._token_transition(
                    state, keyword, keyword_symbols[state][keyword],
                    start, end, bachelor,
                )
                self._cursor = end
                self._keep_from = end
                phase = _PH_TOKEN
        finally:
            self._state = state
            self._phase = phase

    # ------------------------------------------------------------------
    # Accelerated delivery: the C token kernel (repro._accel)
    # ------------------------------------------------------------------
    def _accel_context(self, state: int) -> tuple:
        """Compile the C search context of one automaton state (cached).

        ``(capsule, keywords, symbols, matcher)``: the capsule drives the
        C kernel, the keyword/symbol tuples decode its keyword indices,
        and the matcher is the pure backend whose statistics the kernel's
        deltas are replayed into (so aggregated counters stay identical).
        """
        matcher = self._runtime._matcher(state)
        is_single = isinstance(matcher, SingleKeywordMatcher)
        keywords = (
            (matcher.keyword,) if is_single else tuple(matcher.keywords)
        )
        symbols_map = self._tables.keyword_symbols_bytes[state]
        ctx = (
            self._accel_mod.compile_keywords(list(keywords), is_single),
            keywords,
            tuple(symbols_map[keyword] for keyword in keywords),
            matcher,
        )
        self._accel_ctx[state] = ctx
        return ctx

    def _drive_accel(self) -> bool:
        """The :meth:`_drive` loop with the per-token work done in C.

        The Python side keeps the automaton step (transitions, actions,
        jump statistics); each ``find_token`` call runs frontier search,
        false-match rejection and the quote-aware end-of-tag scan below
        the interpreter, returning either one completed token, an explicit
        resume vector (stored in the ``_c_*`` fields), or "no token".
        Statistic deltas replay the native backend's formulas, so output
        and counters are byte-identical to the pure paths.
        """
        runtime = self._runtime
        tables = runtime.tables
        is_final = tables.is_final
        jumps = tables.jumps
        stats = self.stats
        window = self._window
        text, tbase = window.view()
        wend = window.end
        eof = window.eof
        find_token = self._accel_mod.find_token
        state = self._state
        phase = self._phase
        try:
            while True:
                if phase == _PH_TOKEN:
                    if is_final(state):
                        if self._copy_active:
                            raise self._unclosed_copy_error()
                        return True
                    cursor = self._cursor
                    if cursor >= wend:
                        if eof:
                            raise self._incomplete_error()
                        self._keep_from = cursor
                        return False
                    jump = jumps.get(state, 0)
                    if jump:
                        stats.initial_jumps += 1
                        stats.initial_jump_chars += jump
                        cursor += jump
                    ctx = self._accel_ctx.get(state)
                    if ctx is None:
                        if runtime._matcher(state) is None:
                            raise RuntimeFilterError(
                                f"runtime state {state} has an empty frontier "
                                "vocabulary but is not final; the document "
                                "does not conform to the DTD"
                            )
                        ctx = self._accel_context(state)
                    self._ctx = ctx
                    self._c_phase = 0  # SEARCH_NEW: counts one search
                    self._c_begin = cursor
                    self._c_pos = cursor
                    phase = _PH_SEARCH

                # _PH_SEARCH stands for the whole C-driven section here:
                # the kernel advances through its own verify/tag/quote
                # phases and reports them in the returned resume vector.
                ctx = self._ctx
                (
                    status, c_phase, c_begin, c_pos, c_kwi, c_aux, c_quote,
                    keep_from, tag_end, bachelor,
                    d_searches, d_comparisons, d_shifts, d_shift_total,
                    d_matches, d_local_scan,
                ) = find_token(
                    ctx[0], text, tbase, wend, eof,
                    self._c_phase, self._c_begin, self._c_pos,
                    self._c_kwi, self._c_aux, self._c_quote,
                )
                matcher_stats = ctx[3].stats
                matcher_stats.searches += d_searches
                matcher_stats.comparisons += d_comparisons
                matcher_stats.shifts += d_shifts
                matcher_stats.shift_total += d_shift_total
                matcher_stats.matches += d_matches
                stats.local_scan_chars += d_local_scan
                if status == 1:  # suspended: more input needed
                    self._c_phase = c_phase
                    self._c_begin = c_begin
                    self._c_pos = c_pos
                    self._c_kwi = c_kwi
                    self._c_aux = c_aux
                    self._c_quote = c_quote
                    self._keep_from = keep_from
                    return False
                if status == 2:
                    raise self._no_token_error()
                # Token complete: transition, action, next search origin.
                keyword = ctx[1][c_kwi]
                stats.tokens_matched += 1
                state = self._token_transition(
                    state, keyword, ctx[2][c_kwi], c_pos, tag_end,
                    bool(bachelor),
                )
                self._cursor = tag_end
                self._keep_from = tag_end
                phase = _PH_TOKEN
        finally:
            self._state = state
            self._phase = phase

    # ------------------------------------------------------------------
    # The Figure-4 state machine (a generator that yields for more input)
    # ------------------------------------------------------------------
    def _run(self):
        runtime = self._runtime
        tables = runtime.tables
        window = self._window
        state = tables.initial_state
        cursor = 0
        resume_search = None
        resume = self._pt_resume
        if resume is not None:
            # Restored from a checkpoint (the body runs lazily, so the
            # resume state set by import_state is visible here).
            self._pt_resume = None
            state = resume["state"]
            cursor = resume["cursor"]
            if resume["pending"] is not None:
                resume_search = (resume["search_pos"], resume["pending"])
        stats = self.stats

        while not tables.is_final(state):
            if resume_search is not None:
                # Drop straight back into the suspended frontier search:
                # the initial jump of this state was already accounted
                # before the original search began.
                position, pending = resume_search
                resume_search = None
            else:
                while cursor >= window.end and not window.eof:
                    self._keep_from = cursor
                    self._pt_publish(state, cursor)
                    yield
                if cursor >= window.end:
                    break
                jump = tables.J(state)
                if jump:
                    stats.initial_jumps += 1
                    stats.initial_jump_chars += jump
                    cursor += jump
                position, pending = cursor, None
            matcher = runtime._matcher(state)
            if matcher is None:
                raise RuntimeFilterError(
                    f"runtime state {state} has an empty frontier vocabulary but is "
                    "not final; the document does not conform to the DTD"
                )
            matched = yield from self._locate_tag(position, state, matcher, pending)
            if matched is None:
                raise self._no_token_error()
            stats.tokens_matched += 1
            state = self._transition(state, matched)
            cursor = matched.end
            self._keep_from = cursor

        if not tables.is_final(state):
            raise self._incomplete_error()
        if self._copy_active:
            raise self._unclosed_copy_error()

    # ------------------------------------------------------------------
    # Token location
    # ------------------------------------------------------------------
    def _locate_tag(
        self,
        cursor: int,
        state: int,
        matcher: SingleKeywordMatcher | MultiKeywordMatcher,
        pending: "PendingSearch | None" = None,
    ):
        """Find the next frontier token at or after ``cursor``.

        Matches whose tag name merely extends the searched keyword (the
        ``Abstract`` / ``AbstractText`` case) are rejected and the search is
        resumed just past the false match.  Every byte >= 0x80 counts as a
        name byte (it belongs to a multi-byte UTF-8 name character), so the
        rejection test never depends on where a chunk split a sequence.
        Yields whenever the decision needs input beyond the buffered window.
        A checkpoint-restored ``pending`` resumes the original suspended
        search exactly where it left off.
        """
        window = self._window
        stats = self.stats
        tables = self._runtime.tables
        keyword_symbols = tables.keyword_symbols_bytes[state]
        position = cursor
        while True:
            while True:
                text, text_base = window.view()
                outcome = matcher.find_chunk(
                    text,
                    text_base,
                    position,
                    window.end,
                    at_eof=window.eof,
                    pending=pending,
                )
                if isinstance(outcome, PendingSearch):
                    pending = outcome
                    self._keep_from = outcome.keep_from
                    self._pt_publish_search(state, position, outcome)
                    yield
                    continue
                match = outcome
                break
            pending = None
            if match is None:
                return None
            keyword = match.keyword
            after = match.position + len(keyword)
            while after >= window.end and not window.eof:
                self._keep_from = match.position
                yield
            if after < window.end and is_name_byte(window.char(after)):
                # A longer tag name, e.g. "<AbstractText" while scanning for
                # "<Abstract": resume just past the false match.
                stats.local_scan_chars += 1
                position = match.position + 1
                continue
            symbol = keyword_symbols[keyword]
            end, is_bachelor = yield from self._scan_tag_end(after, match.position)
            if end is None:
                return None
            return _MatchedTag(
                keyword=keyword,
                symbol=symbol,
                start=match.position,
                end=end,
                is_bachelor=is_bachelor and symbol[0] == OPEN,
            )

    def _scan_tag_end(self, position: int, tag_start: int):
        """Scan right for the closing ``>`` of a tag.

        Quoted attribute values are skipped so a ``>`` inside a value cannot
        terminate the scan early.  Returns the offset of ``>`` and whether
        the tag is a bachelor tag (``.../>``); yields while the tag is still
        incomplete in the buffered window (the whole tag is retained so the
        copy actions can replay it).

        The scan is vectorized: candidate ``>`` and quote positions come
        from the cursor's C-level ``find`` and ``local_scan_chars`` is
        accounted per span (``end - position + 1``: every scanned byte
        exactly once, the same total the per-byte loop produced).
        """
        window = self._window
        cursor = position
        while True:
            gt = window.find(b">", cursor)
            while gt < 0:
                if window.eof:
                    return None, False
                self._keep_from = tag_start
                yield
                gt = window.find(b">", cursor)
            dq = window.find(b'"', cursor, gt)
            sq = window.find(b"'", cursor, gt)
            if dq < 0 and sq < 0:
                end = gt
                break
            if dq >= 0 and (sq < 0 or dq < sq):
                quote_at, needle = dq, b'"'
            else:
                quote_at, needle = sq, b"'"
            search_from = quote_at + 1
            while True:
                closing = window.find(needle, search_from)
                if closing >= 0:
                    break
                if window.eof:
                    return None, False
                search_from = window.end
                self._keep_from = tag_start
                yield
            cursor = closing + 1
        self.stats.local_scan_chars += end - position + 1
        is_bachelor = end > position and window.char(end - 1) == _SLASH
        return end, is_bachelor


#: :class:`~repro.core.tables.Action` -> flat code used by the native step
#: tables (must mirror the ``ACT_*`` enum in ``_accel.c``).
_ACTION_CODE = {
    Action.NOP: 0,
    Action.COPY_TAG: 1,
    Action.COPY_ON: 2,
    Action.COPY_OFF: 3,
}

#: Cell flags of the native step tables (the ``CF_*`` enum in ``_accel.c``).
_CF_OPEN = 1
_CF_BACHELOR_COPY = 2


class StepProgram(NamedTuple):
    """One stream's Figure-4 decision logic compiled for ``step_events``.

    The C kernel works on flat int64 tables indexed by ``row * K + kid``
    (``row`` a densified automaton state, ``kid`` a *union* keyword id of
    the engine's :class:`~repro.matching.dispatch.KeywordDispatcher`); this
    record keeps the capsule owning those tables plus the id mappings needed
    to translate a :class:`DrivenStream` in and out of its native state
    block.  Compiled once per (tables, union vocabulary) pair and shared by
    every stream of the same plan.
    """

    capsule: object                 #: ``repro._accel.step`` capsule
    state_rows: "dict[int, int]"    #: automaton state id -> table row
    state_ids: "tuple[int, ...]"    #: table row -> automaton state id
    tag_ids: "dict[str, int]"       #: tag name -> interned id (0 = none)
    tag_names: "tuple[str, ...]"    #: interned id -> tag name


def compile_step_tables(
    tables: RuntimeTables, keywords: "tuple[bytes, ...]", accel_mod
) -> StepProgram:
    """Flatten ``tables`` over the union keyword space for the C stepper.

    ``keywords`` is the dispatcher's union vocabulary (the event id space
    of ``scan_events``); keywords of other queries simply stay out of this
    stream's table rows (``next == -1``), which is exactly the subscription
    test the Python registry performs.  The bachelor open+close pair is
    resolved here so the kernel takes both transitions in one step; a
    missing close transition is encoded as ``-2`` and makes the kernel bail
    to the Python path, which raises the identical error.
    """
    rows: dict[int, int] = {}
    state_ids: list[int] = []
    for state in tables.automaton.states:
        rows[state.state_id] = len(state_ids)
        state_ids.append(state.state_id)
    state_count = len(state_ids)
    keyword_count = len(keywords)
    keyword_index = {keyword: index for index, keyword in enumerate(keywords)}
    cells = state_count * keyword_count
    next_tab = array("q", [-1]) * cells
    action_tab = array("q", bytes(8 * cells))
    tagid_tab = array("q", bytes(8 * cells))
    flags_tab = array("q", bytes(8 * cells))
    b_next_tab = array("q", [-2]) * cells
    jump_tab = array("q", bytes(8 * state_count))
    final_tab = array("q", bytes(8 * state_count))
    tag_ids: dict[str, int] = {}
    tag_names: list[str] = [""]

    def intern(tag: str) -> int:
        tag_id = tag_ids.get(tag)
        if tag_id is None:
            tag_id = len(tag_names)
            tag_ids[tag] = tag_id
            tag_names.append(tag)
        return tag_id

    for state_id, row in rows.items():
        jump_tab[row] = tables.J(state_id)
        final_tab[row] = 1 if tables.is_final(state_id) else 0
        for keyword, symbol in tables.keyword_symbols_bytes.get(
            state_id, {}
        ).items():
            kid = keyword_index.get(keyword)
            if kid is None:
                continue
            cell = row * keyword_count + kid
            # The vocabulary is built from the transition table, so the
            # lookup cannot miss; a KeyError here means broken tables.
            next_state = tables.transition[state_id][symbol]
            next_tab[cell] = rows[next_state]
            action_tab[cell] = _ACTION_CODE[tables.T(next_state)]
            kind, tag = symbol
            tagid_tab[cell] = intern(tag)
            flags = 0
            if kind == OPEN:
                flags |= _CF_OPEN
                close_state = tables.transition.get(next_state, {}).get(
                    (CLOSE, tag)
                )
                if close_state is not None:
                    b_next_tab[cell] = rows[close_state]
                    open_action = tables.T(next_state)
                    close_action = tables.T(close_state)
                    wants_copy = (
                        open_action in (Action.COPY_TAG, Action.COPY_ON)
                        or close_action in (Action.COPY_TAG, Action.COPY_OFF)
                    ) and not (
                        open_action is Action.NOP
                        and close_action is Action.NOP
                    )
                    if wants_copy:
                        flags |= _CF_BACHELOR_COPY
            flags_tab[cell] = flags
    capsule = accel_mod.compile_step(
        next_tab, action_tab, tagid_tab, flags_tab, b_next_tab, jump_tab,
        final_tab, state_count, keyword_count,
    )
    return StepProgram(
        capsule, rows, tuple(state_ids), tag_ids, tuple(tag_names)
    )


class DrivenStream(_FilterStreamBase):
    """Figure-4 execution driven by externally supplied keyword hits.

    The multi-query engine scans the document once with the union keyword
    set of all compiled queries and pushes every occurrence -- in document
    order, longer keywords first among co-located hits -- to the driven
    streams whose keyword it is.  The stream replays exactly what a private
    :class:`RuntimeStream` would have decided: occurrences below the current
    search origin (cursor plus table-J jump) are skipped unseen, false
    matches are rejected with the same ``local_scan_chars`` accounting,
    accepted tokens drive the same transitions and copy actions against the
    *shared* window.  Matcher-level counters (comparisons, shifts) live with
    the shared scan -- that is the work the engine saves -- so this stream's
    statistics carry the structural counters only.

    Keywords are the UTF-8 byte keywords of the shared scan; all offsets
    are absolute byte offsets into the shared binary window.  The stream
    never reads the window below :meth:`keep_floor`; the engine uses that
    floor (over all queries) to discard buffered input.

    ``start_at`` positions the stream's search origin at an absolute byte
    offset: occurrences starting below it are skipped unseen, exactly as a
    fresh stream whose input began there.  The multi-query engine uses this
    to attach queries to a live stream mid-document.
    """

    def __init__(
        self,
        tables: RuntimeTables,
        window: ChunkCursor,
        sink: AnySink | None = None,
        *,
        binary: bool = False,
        start_at: int = 0,
    ) -> None:
        super().__init__(tables, window, sink, binary)
        self._state = tables.initial_state
        self._vocabulary = tables.keyword_symbols_bytes.get(self._state, {})
        self._transitions = tables.transition.get(self._state, {})
        self._jumps = tables.jumps
        self._actions = tables.actions
        self._final_states = frozenset(
            state.state_id for state in tables.automaton.states if state.is_final
        )
        self._search_from = start_at
        self._pending_jump = True
        self._last_position = -1
        self._done = self._state in self._final_states

    @property
    def accepted(self) -> bool:
        """True once the runtime automaton reached a final state."""
        return self._done

    def subscription_keywords(self) -> tuple[bytes, ...]:
        """The byte keywords of the current state's frontier vocabulary.

        The engine subscribes each stream to exactly these keywords and
        refreshes the subscription whenever :meth:`push_token` reports a
        transition, so hits no query currently searches for are never even
        resolved -- the shared-scan analogue of the searching runtime
        skipping irrelevant regions.  Empty once accepted.
        """
        if self._done:
            return ()
        return self._tables.vocabulary_bytes.get(self._state, ())

    def keep_floor(self) -> int | None:
        """Lowest absolute offset this stream may still read from the window.

        ``None`` when the stream needs nothing retained: outside a copy
        region every future slice starts at a future token, and future
        tokens start at or above the engine's dispatch frontier.
        """
        if self._copy_active:
            return self._copy_emitted
        return None

    def _resolve_jump(self, state: int) -> None:
        """Apply table J on entering ``state``, once input is known to follow.

        The searching runtime adds J[q] to its cursor before the first
        search in a state; a delivered occurrence proves input follows the
        cursor, so the jump is resolved (and counted) on first delivery.
        """
        jump = self._jumps.get(state, 0)
        if jump:
            self.stats.initial_jumps += 1
            self.stats.initial_jump_chars += jump
            self._search_from += jump
        self._pending_jump = False

    def push_false_match(self, keyword: bytes, start: int) -> None:
        """Deliver one false-match occurrence (tag name extends ``keyword``).

        The searching runtime pays one local-scan comparison for a false
        match of its current vocabulary and resumes just past it; this
        replays that accounting.
        """
        if self._done:
            return
        if self._pending_jump:
            self._resolve_jump(self._state)
        if start < self._search_from:
            return
        if keyword not in self._vocabulary:
            return
        if start == self._last_position:
            # A longer vocabulary keyword at the same position was already
            # considered; the leftmost-longest search never reports this one.
            return
        self._last_position = start
        self.stats.local_scan_chars += 1

    def push_token(
        self, keyword: bytes, start: int, end: int, is_bachelor: bool, scan_chars: int
    ) -> bool:
        """Consider one valid scanned token (document order).

        ``end`` is the offset of the closing ``>`` and ``scan_chars`` the
        end-of-tag scan span (``end - start - len(keyword) + 1``: every
        byte a private end-of-tag scan reads, counted once).  Returns
        True when the token was accepted -- a transition was taken and the
        frontier vocabulary may have changed -- so the engine can refresh
        this stream's keyword subscription.
        """
        if self._done:
            # Accepted automata ignore trailing tokens, like the searching
            # runtime ignores trailing input.
            return False
        state = self._state
        if self._pending_jump:
            self._resolve_jump(state)
        if start < self._search_from:
            return False
        vocabulary = self._vocabulary
        if keyword not in vocabulary:
            return False
        if start == self._last_position:
            # Shadowed by a longer vocabulary keyword at the same position.
            return False
        stats = self.stats
        stats.local_scan_chars += scan_chars
        stats.tokens_matched += 1
        symbol = vocabulary[keyword]
        if is_bachelor and symbol[0] == OPEN:
            next_state = self._transition(
                state, _MatchedTag(keyword, symbol, start, end, True)
            )
        else:
            # Inlined non-bachelor transition and actions: the per-token
            # fast path of the shared-scan engine (same semantics as
            # _transition / _apply_action).
            next_state = self._transitions.get(symbol)
            if next_state is None:
                raise self._transition_error(state, symbol, start)
            action = self._actions.get(next_state)
            if action is not None and action is not Action.NOP:
                if action is Action.COPY_ON:
                    if not self._copy_active:
                        self._copy_active = True
                        self._copy_tag = symbol[1]
                        self._copy_emitted = start
                elif action is Action.COPY_OFF:
                    if self._copy_active and symbol[1] == self._copy_tag:
                        self._emit(self._window.slice(self._copy_emitted, end + 1))
                        stats.regions_copied += 1
                        stats.tokens_copied += 1
                        self._copy_active = False
                        self._copy_tag = ""
                        self._copy_emitted = 0
                    elif not self._copy_active:
                        # Asymmetric table entries degrade gracefully to
                        # copying the closing tag itself.
                        self._emit(self._window.slice(start, end + 1))
                        stats.tokens_copied += 1
                elif not self._copy_active:  # Action.COPY_TAG
                    self._emit(self._window.slice(start, end + 1))
                    stats.tokens_copied += 1
        tables = self._tables
        self._state = next_state
        self._vocabulary = tables.keyword_symbols_bytes.get(next_state, {})
        self._transitions = tables.transition.get(next_state, {})
        self._search_from = end
        self._pending_jump = True
        self._last_position = -1
        if next_state in self._final_states:
            self._done = True
        return True

    # ------------------------------------------------------------------
    # Native stepping (the C ``step_events`` kernel)
    # ------------------------------------------------------------------
    def export_native(self, out, base: int, program: StepProgram) -> None:
        """Write this stream's state into one 16-slot native step block.

        ``out`` is the engine's shared ``array('q')`` and ``base`` the
        block's first slot.  The statistic-delta slots are zeroed; the
        kernel accumulates into them and :meth:`import_native` folds them
        back into :attr:`stats`.
        """
        out[base] = 0 if self._done else 1
        out[base + 1] = program.state_rows[self._state]
        out[base + 2] = self._search_from
        out[base + 3] = 1 if self._pending_jump else 0
        out[base + 4] = self._last_position
        out[base + 5] = 1 if self._copy_active else 0
        out[base + 6] = (
            program.tag_ids[self._copy_tag] if self._copy_active else 0
        )
        out[base + 7] = self._copy_emitted
        for slot in range(base + 8, base + 16):
            out[slot] = 0

    def import_native(self, block, base: int, program: StepProgram) -> None:
        """Fold one native step block back into this stream's state."""
        stats = self.stats
        stats.local_scan_chars += block[base + 8]
        stats.tokens_matched += block[base + 9]
        stats.tokens_copied += block[base + 10]
        stats.regions_copied += block[base + 11]
        stats.initial_jumps += block[base + 12]
        stats.initial_jump_chars += block[base + 13]
        state = program.state_ids[block[base + 1]]
        if state != self._state:
            tables = self._tables
            self._state = state
            self._vocabulary = tables.keyword_symbols_bytes.get(state, {})
            self._transitions = tables.transition.get(state, {})
        self._search_from = block[base + 2]
        self._pending_jump = bool(block[base + 3])
        self._last_position = block[base + 4]
        self._copy_active = bool(block[base + 5])
        self._copy_tag = (
            program.tag_names[block[base + 6]] if self._copy_active else ""
        )
        self._copy_emitted = block[base + 7]
        if block[base + 14]:
            self._done = True

    # ------------------------------------------------------------------
    # Checkpoint: capture and restore
    # ------------------------------------------------------------------
    def export_state(self) -> dict:
        """Capture this stream's resume state as plain data.

        The automaton coordinates ride in the same flat layout as the
        16-slot native step block of :meth:`export_native` (slot 6, the
        per-process interned tag id, travels as the tag name itself, and
        the raw state id replaces the program row).  The shared window is
        *not* included: it belongs to the session, which snapshots it once
        for all queries.
        """
        snapshot = self._export_common(with_window=False)
        snapshot["kind"] = "driven"
        snapshot["block"] = [
            0 if self._done else 1,
            self._state,
            self._search_from,
            1 if self._pending_jump else 0,
            self._last_position,
            1 if self._copy_active else 0,
            0,
            self._copy_emitted,
            0, 0, 0, 0, 0, 0,
            1 if self._done else 0,
            0,
        ]
        return snapshot

    def import_state(self, snapshot: dict) -> None:
        """Restore a snapshot captured by :meth:`export_state`.

        The caller (the multi-query session) restores the shared window
        separately; this only rebuilds the per-query machine, including
        the state-derived vocabulary and transition views.
        """
        if snapshot.get("kind") != "driven":
            raise CheckpointError("snapshot is not a driven-stream checkpoint")
        self._import_common(snapshot, with_window=False)
        block = [int(value) for value in snapshot["block"]]
        tables = self._tables
        state = block[1]
        self._state = state
        self._vocabulary = tables.keyword_symbols_bytes.get(state, {})
        self._transitions = tables.transition.get(state, {})
        self._search_from = block[2]
        self._pending_jump = bool(block[3])
        self._last_position = block[4]
        self._done = bool(block[14])

    def emit_span(self, start: int, end: int) -> None:
        """Emit one window slice decided by the native step kernel.

        ``end`` is exclusive (the kernel emits ``tag_end + 1`` spans).
        """
        self._emit(self._window.slice(start, end))

    def flush_copy(self, limit: int) -> None:
        """Emit the open copy region up to ``limit``.

        Only safe when every token starting below ``limit`` has been pushed
        and ``limit`` does not exceed the buffered window; the engine calls
        this after each feed so copy regions never pin the whole document.
        """
        if self._copy_active and limit > self._copy_emitted:
            self._emit(self._window.slice(self._copy_emitted, limit))
            self._copy_emitted = limit

    def take_output(self):
        """Output fragments emitted since the last call (sink-less mode)."""
        return self._take_output()

    def finish(self, *, validate: bool = True):
        """End of input: validate acceptance and return remaining output.

        ``validate=False`` skips the acceptance and open-copy-region checks
        (an open region is dropped unemitted).  The multi-query engine uses
        it for queries attached mid-document, whose automata legitimately
        never saw the document root.
        """
        if self._finished:
            raise RuntimeFilterError("driven stream is already finished")
        self._finished = True
        if validate:
            if not self._done and not self._tables.is_final(self._state):
                raise self._incomplete_error()
            if self._copy_active:
                raise self._unclosed_copy_error()
        output = self._flush_output()
        self.stats.output_size = self._emitted_bytes
        return output
