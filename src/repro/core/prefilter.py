"""High-level facade: compile a DTD + projection paths into a prefilter.

This is the public entry point of the reproduction::

    from repro import Dtd, SmpPrefilter

    dtd = Dtd.parse(dtd_text)
    prefilter = SmpPrefilter.compile(dtd, ["//australia//description#"])
    session = prefilter.session()
    output = session.feed(xml_text) + session.finish()
    print(output)                 # the projected document
    print(session.stats.char_comparison_ratio)

``SmpPrefilter.compile`` runs the static analysis of Section IV and builds
the lookup tables of Figure 3.  The compiled object is a reusable *plan*
(the paper's Table I runs the same compiled prefilter over documents from
10 MB to 5 GB); :meth:`SmpPrefilter.cached` memoises plans keyed by
``(DTD, paths, backend)`` so independent callers share one compilation.

One-shot filtering lives in the unified dataflow API
(``repro.api.Engine(Query.from_plan(plan)).run(source)``).  Incremental
filtering in O(chunk + carry window) memory goes through the streaming
session API::

    session = prefilter.session()
    for chunk in chunks:          # bytes chunks natively, str via the shim
        out.write(session.feed(chunk))
    out.write(session.finish())
    session.stats               # identical to a one-shot run

The execution core is byte-native (:mod:`repro.core.runtime`): ``str``
input is UTF-8 encoded on entry and only the bytes actually copied to the
projection are ever decoded back; ``binary=True`` on any entry point keeps
the output as raw projected bytes.  Each session owns its runtime, so any
number of sessions compiled from the same plan can run concurrently, and
a live session can be captured/restored through
:meth:`FilterSession.export_state` / :meth:`FilterSession.import_state`
(see :mod:`repro.checkpoint` for the durable on-disk format).
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.runtime import AnySink, RuntimeStream, SmpRuntime
from repro.core.static_analysis import AnalysisResult, StaticAnalyzer
from repro.core.stats import CompilationStatistics, FilterRun, RunStatistics
from repro.core.stream import DEFAULT_CHUNK_SIZE, iter_chunks
from repro.core.tables import RuntimeTables, build_tables, summarize_states
from repro.dtd.model import Dtd
from repro.projection.extraction import QuerySpec
from repro.projection.paths import ProjectionPath

#: Capacity of the shared compiled-plan cache (see :meth:`SmpPrefilter.cached`).
PLAN_CACHE_SIZE = 64

_plan_cache: "OrderedDict[tuple, SmpPrefilter]" = OrderedDict()
_plan_cache_lock = threading.Lock()


@dataclass
class SmpPrefilter:
    """A compiled SMP prefilter: static analysis result, tables, runtime."""

    dtd: Dtd
    paths: list[ProjectionPath]
    analysis: AnalysisResult
    tables: RuntimeTables
    backend: str = "instrumented"
    compilation: CompilationStatistics = field(default_factory=CompilationStatistics)
    _runtime: SmpRuntime | None = field(default=None, repr=False, compare=False)

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    @classmethod
    def compile(
        cls,
        dtd: Dtd,
        paths: Sequence[ProjectionPath | str],
        *,
        backend: str = "instrumented",
        add_default_paths: bool = True,
    ) -> "SmpPrefilter":
        """Run the static analysis and build the lookup tables.

        Parameters
        ----------
        dtd:
            The (non-recursive) schema.
        paths:
            Projection paths as strings or parsed objects; the default
            ``/*`` path is added unless ``add_default_paths`` is False.
        backend:
            String-matching backend: ``"instrumented"`` (paper configuration
            with comparison counters), ``"native"`` (CPython ``str.find``),
            ``"naive"``, ``"aho-corasick"`` or ``"horspool"``.
        """
        started = time.perf_counter()
        analyzer = StaticAnalyzer(dtd, paths, add_default_paths=add_default_paths)
        analysis = analyzer.analyse()
        tables = build_tables(analysis)
        elapsed = time.perf_counter() - started
        summary = summarize_states(tables)
        compilation = CompilationStatistics(
            dtd_states=analysis.automaton.state_count(),
            dtd_transitions=analysis.automaton.transition_count(),
            selected_states=len(analysis.selected),
            runtime_states=summary["states"],
            cw_states=summary["cw"],
            bm_states=summary["bm"],
            compile_seconds=elapsed,
        )
        return cls(
            dtd=dtd,
            paths=analysis.paths,
            analysis=analysis,
            tables=tables,
            backend=backend,
            compilation=compilation,
        )

    @classmethod
    def cached(
        cls,
        dtd: Dtd,
        paths: Sequence[ProjectionPath | str],
        *,
        backend: str = "instrumented",
        add_default_paths: bool = True,
    ) -> "SmpPrefilter":
        """Like :meth:`compile`, but memoised.

        Plans are cached (LRU, :data:`PLAN_CACHE_SIZE` entries) keyed by the
        DTD object, the normalised path strings, the backend and the
        default-path flag, so concurrent callers filtering different
        documents against the same query share a single compilation.  The
        cache holds a strong reference to the DTD, which keeps the identity
        key stable for the lifetime of the entry.
        """
        key = (
            id(dtd),
            tuple(sorted(str(path) for path in paths)),
            backend,
            add_default_paths,
        )
        with _plan_cache_lock:
            plan = _plan_cache.get(key)
            if plan is not None:
                _plan_cache.move_to_end(key)
                return plan
        plan = cls.compile(
            dtd, paths, backend=backend, add_default_paths=add_default_paths
        )
        with _plan_cache_lock:
            _plan_cache[key] = plan
            _plan_cache.move_to_end(key)
            while len(_plan_cache) > PLAN_CACHE_SIZE:
                _plan_cache.popitem(last=False)
        return plan

    @classmethod
    def compile_for_query(
        cls, dtd: Dtd, query: QuerySpec, *, backend: str = "instrumented"
    ) -> "SmpPrefilter":
        """Compile a prefilter for one of the workload query specifications."""
        return cls.compile(dtd, query.parsed_paths(), backend=backend,
                           add_default_paths=False)

    @classmethod
    def cached_for_query(
        cls, dtd: Dtd, query: QuerySpec, *, backend: str = "instrumented"
    ) -> "SmpPrefilter":
        """Memoised :meth:`compile_for_query` (same cache as :meth:`cached`).

        The multi-query engine compiles every member query through this
        entry point, so engines constructed over overlapping query sets --
        and plain single-query sessions for the same specs -- share one
        compilation per (DTD, paths, backend) key.
        """
        return cls.cached(dtd, query.parsed_paths(), backend=backend,
                          add_default_paths=False)

    # ------------------------------------------------------------------
    # Filtering
    # ------------------------------------------------------------------
    @property
    def runtime(self) -> SmpRuntime:
        """The (lazily created) runtime executor shared by one-shot calls."""
        if self._runtime is None or self._runtime.backend != self.backend:
            self._runtime = SmpRuntime(self.tables, backend=self.backend)
        return self._runtime

    def session(
        self,
        *,
        sink: AnySink | None = None,
        binary: bool = False,
        delivery: str | None = None,
    ) -> "FilterSession":
        """Open a streaming filter session for one document.

        Each session owns a private runtime over the shared compiled tables,
        so sessions obtained from one prefilter may run concurrently.  With
        ``sink`` the projected fragments are pushed to the callback and the
        session's ``feed``/``finish`` return empty output.  ``binary=True``
        keeps the output channel as raw projected bytes (the byte-native
        path); the default text mode decodes the emitted bytes -- and only
        those -- incrementally.  ``delivery`` selects the token-event
        delivery mode (see :data:`repro.core.runtime.DELIVERIES`); the
        default picks the fastest available path.
        """
        return FilterSession(self, sink=sink, binary=binary, delivery=delivery)

    def _api_run(
        self, source, *, sink=None, binary=False, measure_memory=False
    ) -> FilterRun:
        """Delegate a one-shot run to the unified dataflow API."""
        from repro import api

        engine = api.Engine(api.Query.from_plan(self))
        run = engine.run(
            source,
            sinks=None if sink is None else [sink],
            binary=binary,
            measure_memory=measure_memory,
        )
        return FilterRun(
            output=run.single.output,
            stats=run.single.stats,
            compilation=self.compilation,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def describe_tables(self) -> str:
        """Human-readable rendering of the compiled tables."""
        return self.tables.describe()

    def states_summary(self) -> str:
        """The ``States (CW+BM)`` figure of the paper's tables."""
        return self.compilation.states_label()


class FilterSession:
    """A streaming prefilter run over one document.

    Wraps a :class:`~repro.core.runtime.RuntimeStream` with a private
    runtime, so sessions are independent of each other and of the owning
    prefilter's one-shot runtime.  Use :meth:`feed`/:meth:`finish` directly,
    or :meth:`run` to drive a whole chunk iterable.  Chunks may be ``bytes``
    (the native path) or ``str`` (encoded on entry); ``binary`` selects the
    output type (projected ``bytes`` vs incrementally decoded ``str``).
    """

    def __init__(
        self,
        prefilter: SmpPrefilter,
        sink: AnySink | None = None,
        *,
        binary: bool = False,
        delivery: str | None = None,
    ) -> None:
        self.prefilter = prefilter
        self.binary = binary
        self._stream: RuntimeStream = SmpRuntime(
            prefilter.tables, backend=prefilter.backend
        ).stream(sink=sink, binary=binary, delivery=delivery)

    @property
    def delivery(self) -> str:
        """The effective token-event delivery mode of this session."""
        return self._stream.delivery

    @property
    def stats(self) -> RunStatistics:
        """Statistics accumulated so far (complete after :meth:`finish`)."""
        return self._stream.stats

    @property
    def finished(self) -> bool:
        """True once :meth:`finish` has completed."""
        return self._stream.finished

    @property
    def accepted(self) -> bool:
        """True once the runtime automaton reached a final state."""
        return self._stream.accepted

    @property
    def buffered_bytes(self) -> int:
        """Input bytes currently retained in the carry-over window."""
        return self._stream.buffered_bytes

    def export_state(self) -> dict:
        """Capture the session's complete resume state as plain data.

        Delegates to the underlying runtime stream; see
        :meth:`repro.core.runtime.RuntimeStream.export_state`.
        """
        return self._stream.export_state()

    def import_state(self, snapshot: dict) -> None:
        """Restore a snapshot into this freshly opened session."""
        self._stream.import_state(snapshot)

    def feed(self, chunk):
        """Process one input chunk; returns the newly emitted output."""
        return self._stream.feed(chunk)

    def finish(self):
        """Signal end of input; returns the remaining output."""
        return self._stream.finish()

    def run(self, chunks, chunk_size: int = DEFAULT_CHUNK_SIZE) -> FilterRun:
        """Feed all of ``chunks`` and finish; returns the :class:`FilterRun`."""
        pieces = []
        for chunk in iter_chunks(chunks, chunk_size):
            emitted = self.feed(chunk)
            if emitted:
                pieces.append(emitted)
        emitted = self.finish()
        if emitted:
            pieces.append(emitted)
        empty = b"" if self.binary else ""
        return FilterRun(
            output=empty.join(pieces),
            stats=self.stats,
            compilation=self.prefilter.compilation,
        )
