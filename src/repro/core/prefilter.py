"""High-level facade: compile a DTD + projection paths into a prefilter.

This is the public entry point of the reproduction::

    from repro import Dtd, SmpPrefilter

    dtd = Dtd.parse(dtd_text)
    prefilter = SmpPrefilter.compile(dtd, ["//australia//description#"])
    result = prefilter.filter_document(xml_text)
    print(result.output)          # the projected document
    print(result.stats.char_comparison_ratio)

``SmpPrefilter.compile`` runs the static analysis of Section IV and builds
the lookup tables of Figure 3; ``filter_document`` runs the algorithm of
Figure 4.  The compiled object is reusable across documents (the paper's
Table I runs the same compiled prefilter over documents from 10 MB to 5 GB).
"""

from __future__ import annotations

import time
import tracemalloc
from dataclasses import dataclass, field
from typing import IO, Iterable, Sequence

from repro.core.runtime import SmpRuntime
from repro.core.static_analysis import AnalysisResult, StaticAnalyzer
from repro.core.stats import CompilationStatistics, FilterRun, RunStatistics
from repro.core.tables import RuntimeTables, build_tables, summarize_states
from repro.dtd.model import Dtd
from repro.projection.extraction import QuerySpec
from repro.projection.paths import ProjectionPath


@dataclass
class SmpPrefilter:
    """A compiled SMP prefilter: static analysis result, tables, runtime."""

    dtd: Dtd
    paths: list[ProjectionPath]
    analysis: AnalysisResult
    tables: RuntimeTables
    backend: str = "instrumented"
    compilation: CompilationStatistics = field(default_factory=CompilationStatistics)
    _runtime: SmpRuntime | None = field(default=None, repr=False, compare=False)

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    @classmethod
    def compile(
        cls,
        dtd: Dtd,
        paths: Sequence[ProjectionPath | str],
        *,
        backend: str = "instrumented",
        add_default_paths: bool = True,
    ) -> "SmpPrefilter":
        """Run the static analysis and build the lookup tables.

        Parameters
        ----------
        dtd:
            The (non-recursive) schema.
        paths:
            Projection paths as strings or parsed objects; the default
            ``/*`` path is added unless ``add_default_paths`` is False.
        backend:
            String-matching backend: ``"instrumented"`` (paper configuration
            with comparison counters), ``"native"`` (CPython ``str.find``),
            ``"naive"``, ``"aho-corasick"`` or ``"horspool"``.
        """
        started = time.perf_counter()
        analyzer = StaticAnalyzer(dtd, paths, add_default_paths=add_default_paths)
        analysis = analyzer.analyse()
        tables = build_tables(analysis)
        elapsed = time.perf_counter() - started
        summary = summarize_states(tables)
        compilation = CompilationStatistics(
            dtd_states=analysis.automaton.state_count(),
            dtd_transitions=analysis.automaton.transition_count(),
            selected_states=len(analysis.selected),
            runtime_states=summary["states"],
            cw_states=summary["cw"],
            bm_states=summary["bm"],
            compile_seconds=elapsed,
        )
        return cls(
            dtd=dtd,
            paths=analysis.paths,
            analysis=analysis,
            tables=tables,
            backend=backend,
            compilation=compilation,
        )

    @classmethod
    def compile_for_query(
        cls, dtd: Dtd, query: QuerySpec, *, backend: str = "instrumented"
    ) -> "SmpPrefilter":
        """Compile a prefilter for one of the workload query specifications."""
        return cls.compile(dtd, query.parsed_paths(), backend=backend,
                           add_default_paths=False)

    # ------------------------------------------------------------------
    # Filtering
    # ------------------------------------------------------------------
    @property
    def runtime(self) -> SmpRuntime:
        """The (lazily created) runtime executor."""
        if self._runtime is None or self._runtime.backend != self.backend:
            self._runtime = SmpRuntime(self.tables, backend=self.backend)
        return self._runtime

    def filter_document(self, text: str, *, measure_memory: bool = False) -> FilterRun:
        """Prefilter a document held in a string."""
        if measure_memory:
            tracemalloc.start()
        output, stats = self.runtime.filter_text(text)
        if measure_memory:
            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            stats.peak_memory_bytes = peak
        return FilterRun(output=output, stats=stats, compilation=self.compilation)

    def filter_file(self, path: str, *, measure_memory: bool = False) -> FilterRun:
        """Prefilter a document stored on disk."""
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
        return self.filter_document(text, measure_memory=measure_memory)

    def filter_stream(
        self, chunks: Iterable[str] | IO[str], *, measure_memory: bool = False
    ) -> FilterRun:
        """Prefilter a document provided as an iterable of chunks or a file object.

        The chunks are concatenated into a single buffer before filtering.
        (The paper's prototype reads fixed-size chunks into a pre-allocated
        buffer; a bounded-window buffer is a possible extension and does not
        change any of the reproduced metrics, which are character-based.)
        """
        if hasattr(chunks, "read"):
            text = chunks.read()  # type: ignore[union-attr]
        else:
            text = "".join(chunks)
        return self.filter_document(text, measure_memory=measure_memory)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def describe_tables(self) -> str:
        """Human-readable rendering of the compiled tables."""
        return self.tables.describe()

    def states_summary(self) -> str:
        """The ``States (CW+BM)`` figure of the paper's tables."""
        return self.compilation.states_label()
