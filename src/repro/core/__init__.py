"""The SMP core: static analysis, lookup tables, runtime, prefilter facade."""

from repro.core.multi import MultiQueryEngine, MultiQueryRun, MultiQuerySession
from repro.core.prefilter import SmpPrefilter
from repro.core.runtime import SmpRuntime
from repro.core.static_analysis import (
    AnalysisResult,
    RuntimeAutomaton,
    RuntimeState,
    StaticAnalyzer,
)
from repro.core.stats import CompilationStatistics, FilterRun, RunStatistics
from repro.core.tables import Action, RuntimeTables, build_tables, keyword_for, summarize_states

__all__ = [
    "Action",
    "AnalysisResult",
    "CompilationStatistics",
    "FilterRun",
    "MultiQueryEngine",
    "MultiQueryRun",
    "MultiQuerySession",
    "RunStatistics",
    "RuntimeAutomaton",
    "RuntimeState",
    "RuntimeTables",
    "SmpPrefilter",
    "SmpRuntime",
    "StaticAnalyzer",
    "build_tables",
    "keyword_for",
    "summarize_states",
]
