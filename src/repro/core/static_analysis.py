"""Static compilation of the runtime automaton (Section IV, Figure 6).

Given a non-recursive DTD and a set of projection paths the analysis

1. selects a set ``S`` of DTD-automaton states:

   (a) every state whose document branch is *relevant* (Definition 5),
   (b) minus the interior states of subtrees that are copied wholesale
       ("copy on"/"copy off" nodes -- once such a node is matched, the
       runtime only needs to find its closing tag, Example 12),
   (c) plus, to a fixpoint, the parent states of look-alike states the
       runtime could otherwise confuse after skipping input (Example 11);

2. computes the subgraph automaton ``D|S`` (Definition 4);
3. determinises it, which preserves homogeneity, yielding the runtime
   automaton whose states the lookup tables of Figure 3 are attached to.

Deviation from the paper's Figure 6 step (b): the paper removes the interior
states of a dual pair whenever all of them are relevant.  We additionally
require the pair itself to satisfy condition C2 (its whole subtree is
copied), because only then is skipping the interior matches safe.  For
``#``-flagged subtrees (the situation of Example 12) the two formulations
coincide.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

from repro.dtd.automaton import CLOSE, OPEN, DtdAutomaton, Symbol
from repro.dtd.model import Dtd
from repro.errors import CompilationError
from repro.projection.paths import ProjectionPath, ensure_default_paths
from repro.projection.relevance import RelevanceChecker


# ----------------------------------------------------------------------
# Runtime automaton (the determinised subgraph automaton)
# ----------------------------------------------------------------------
@dataclass
class RuntimeState:
    """One state of the determinised runtime automaton.

    ``nfa_states`` records which DTD-automaton states this DFA state stands
    for; ``symbol`` is the incoming transition label (None only for the
    initial state) -- well-defined because homogeneity is preserved by the
    subset construction.
    """

    state_id: int
    nfa_states: frozenset[int]
    symbol: Symbol | None
    is_final: bool = False


@dataclass
class RuntimeAutomaton:
    """Deterministic, homogeneous runtime automaton."""

    states: list[RuntimeState] = field(default_factory=list)
    initial: int = 0
    transitions: dict[int, dict[Symbol, int]] = field(default_factory=dict)

    def successors(self, state_id: int) -> dict[Symbol, int]:
        """Outgoing transitions of ``state_id``."""
        return self.transitions.get(state_id, {})

    def state(self, state_id: int) -> RuntimeState:
        """The state object for ``state_id``."""
        return self.states[state_id]

    def final_states(self) -> set[int]:
        """All accepting states."""
        return {state.state_id for state in self.states if state.is_final}

    def state_count(self) -> int:
        """Number of DFA states."""
        return len(self.states)


# ----------------------------------------------------------------------
# Static analysis
# ----------------------------------------------------------------------
@dataclass
class AnalysisResult:
    """Everything the table construction needs."""

    dtd: Dtd
    paths: list[ProjectionPath]
    automaton: DtdAutomaton
    checker: RelevanceChecker
    selected: set[int]
    runtime: RuntimeAutomaton
    #: DFA state -> shortest skippable prefix before any frontier token.
    initial_jumps: dict[int, int]
    #: NFA state id -> True when its document branch satisfies C2.
    keeps_subtree: dict[int, bool]
    #: NFA state id -> True when its document branch is relevant.
    relevant: dict[int, bool]
    analysis_seconds: float = 0.0


class StaticAnalyzer:
    """Runs the Figure 6 compilation."""

    def __init__(
        self,
        dtd: Dtd,
        paths: Sequence[ProjectionPath | str],
        add_default_paths: bool = True,
    ) -> None:
        parsed = [
            path if isinstance(path, ProjectionPath) else ProjectionPath.parse(path)
            for path in paths
        ]
        if add_default_paths:
            parsed = ensure_default_paths(parsed)
        if not parsed:
            raise CompilationError("at least one projection path is required")
        self.dtd = dtd
        self.paths = parsed
        self.automaton = DtdAutomaton(dtd)
        self.checker = RelevanceChecker(parsed, alphabet=dtd.tag_names())

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def analyse(self) -> AnalysisResult:
        """Run the full static analysis."""
        start = time.perf_counter()
        relevant = self._compute_relevance()
        selected = self._select_states(relevant)
        runtime = self._determinize(self._subgraph_transitions(selected), selected)
        initial_jumps = self._compute_initial_jumps(runtime, selected)
        keeps_subtree = {
            state_id: self.checker.keeps_subtree(self.automaton.branch_names(state_id))
            for state_id in range(self.automaton.state_count())
        }
        elapsed = time.perf_counter() - start
        return AnalysisResult(
            dtd=self.dtd,
            paths=self.paths,
            automaton=self.automaton,
            checker=self.checker,
            selected=selected,
            runtime=runtime,
            initial_jumps=initial_jumps,
            keeps_subtree=keeps_subtree,
            relevant=relevant,
            analysis_seconds=elapsed,
        )

    # ------------------------------------------------------------------
    # Step 1(a): relevance of DTD-automaton states (Definition 5)
    # ------------------------------------------------------------------
    def _compute_relevance(self) -> dict[int, bool]:
        relevant: dict[int, bool] = {}
        branch_cache: dict[int, bool] = {}
        for pair in self.automaton.pairs:
            branch = self.automaton.branch_names(pair.open_state)
            decision = branch_cache.get(pair.pair_id)
            if decision is None:
                decision = bool(self.checker.branch_relevant(branch))
                branch_cache[pair.pair_id] = decision
            relevant[pair.open_state] = decision
            relevant[pair.close_state] = decision
        relevant[self.automaton.initial_state] = True
        return relevant

    # ------------------------------------------------------------------
    # Step 1(b) + 1(c): state selection
    # ------------------------------------------------------------------
    def _select_states(self, relevant: dict[int, bool]) -> set[int]:
        selected = {
            state_id
            for state_id, is_relevant in relevant.items()
            if is_relevant and state_id != self.automaton.initial_state
        }

        # Step (b): prune the interiors of wholesale-copied subtrees.
        for pair in self.automaton.pairs:
            if pair.open_state not in selected:
                continue
            branch = self.automaton.branch_names(pair.open_state)
            if not self.checker.keeps_subtree(branch):
                continue
            interior = self.automaton.subtree_states(pair.pair_id)
            if interior:
                # When the pair's subtree is copied wholesale every interior
                # state is relevant (C2 is inherited), so the paper's
                # "R is a subset of S" condition holds and the interior can be
                # skipped by the runtime.
                selected -= interior

        # Step (c): add disambiguating parent states until a fixpoint.
        changed = True
        while changed:
            changed = False
            sources = list(selected) + [self.automaton.initial_state]
            for source in sources:
                in_selected, outside = self._frontier_reachability(source, selected)
                if not outside:
                    continue
                labels_in_selected = {
                    self._state_label(state_id) for state_id in in_selected
                }
                for candidate in outside:
                    if self._state_label(candidate) not in labels_in_selected:
                        continue
                    for parent in self.automaton.parent_states(candidate):
                        if parent != self.automaton.initial_state and parent not in selected:
                            selected.add(parent)
                            dual = self.automaton.dual_of(parent)
                            if dual is not None and dual not in selected:
                                selected.add(dual)
                            changed = True
        return selected

    def _state_label(self, state_id: int) -> tuple[str, str]:
        state = self.automaton.state(state_id)
        return (OPEN if state.is_opening else CLOSE, state.tag)

    def _frontier_reachability(
        self, source: int, selected: set[int]
    ) -> tuple[set[int], set[int]]:
        """States reachable from ``source`` through non-selected intermediates.

        Returns ``(hits, outside)`` where ``hits`` are the selected states at
        which the exploration stops and ``outside`` are the non-selected
        states traversed on the way.
        """
        hits: set[int] = set()
        outside: set[int] = set()
        seen: set[int] = {source}
        stack = [source]
        while stack:
            current = stack.pop()
            for _, target in self.automaton.successors(current):
                if target in seen:
                    continue
                seen.add(target)
                if target in selected:
                    hits.add(target)
                else:
                    outside.add(target)
                    stack.append(target)
        return hits, outside

    # ------------------------------------------------------------------
    # Step 2: subgraph automaton (Definition 4)
    # ------------------------------------------------------------------
    def _subgraph_transitions(
        self, selected: set[int]
    ) -> tuple[dict[int, dict[Symbol, set[int]]], set[int]]:
        """Transitions of ``D|S`` plus its final states."""
        members = set(selected) | {self.automaton.initial_state}
        transitions: dict[int, dict[Symbol, set[int]]] = {state: {} for state in members}
        finals: set[int] = set()
        dtd_finals = self.automaton.final_states
        for source in members:
            if source in dtd_finals:
                finals.add(source)
            seen: set[int] = {source}
            stack = [source]
            while stack:
                current = stack.pop()
                for symbol, target in self.automaton.successors(current):
                    if target in members:
                        transitions[source].setdefault(symbol, set()).add(target)
                        continue
                    if target in dtd_finals:
                        finals.add(source)
                    if target not in seen:
                        seen.add(target)
                        stack.append(target)
        return transitions, finals

    # ------------------------------------------------------------------
    # Step 3: determinisation (subset construction)
    # ------------------------------------------------------------------
    def _determinize(
        self,
        subgraph: tuple[dict[int, dict[Symbol, set[int]]], set[int]],
        selected: set[int],
    ) -> RuntimeAutomaton:
        transitions, finals = subgraph
        runtime = RuntimeAutomaton()
        initial_set = frozenset({self.automaton.initial_state})
        state_index: dict[frozenset[int], int] = {}

        def intern(nfa_states: frozenset[int], symbol: Symbol | None) -> int:
            existing = state_index.get(nfa_states)
            if existing is not None:
                return existing
            state_id = len(runtime.states)
            runtime.states.append(
                RuntimeState(
                    state_id=state_id,
                    nfa_states=nfa_states,
                    symbol=symbol,
                    is_final=bool(nfa_states & finals),
                )
            )
            runtime.transitions[state_id] = {}
            state_index[nfa_states] = state_id
            return state_id

        runtime.initial = intern(initial_set, None)
        pending = [initial_set]
        while pending:
            current = pending.pop()
            current_id = state_index[current]
            merged: dict[Symbol, set[int]] = {}
            for nfa_state in current:
                for symbol, targets in transitions.get(nfa_state, {}).items():
                    merged.setdefault(symbol, set()).update(targets)
            for symbol, targets in merged.items():
                target_set = frozenset(targets)
                known = target_set in state_index
                target_id = intern(target_set, symbol)
                runtime.transitions[current_id][symbol] = target_id
                if not known:
                    pending.append(target_set)
        return runtime

    # ------------------------------------------------------------------
    # Initial jump offsets (table J, Example 1 / Example 3)
    # ------------------------------------------------------------------
    def _compute_initial_jumps(
        self, runtime: RuntimeAutomaton, selected: set[int]
    ) -> dict[int, int]:
        """Shortest guaranteed prefix before any frontier token, per DFA state.

        For every DTD-automaton state the minimum over all paths to a
        selected state of the summed :meth:`DtdAutomaton.skip_weight` of the
        intermediate (skipped) states is computed with a Dijkstra search; the
        DFA value is the minimum over its constituent NFA states.  Using an
        under-approximating weight guarantees the jump can never overshoot a
        frontier token.
        """
        import heapq

        members = set(selected) | {self.automaton.initial_state}
        nfa_jump: dict[int, int] = {}
        for source in members:
            best = None
            # Dijkstra over non-selected intermediate states.
            heap: list[tuple[int, int]] = []
            distances: dict[int, int] = {source: 0}
            heapq.heappush(heap, (0, source))
            while heap:
                cost, current = heapq.heappop(heap)
                if cost > distances.get(current, cost):
                    continue
                if best is not None and cost >= best:
                    continue
                for _, target in self.automaton.successors(current):
                    if target in members:
                        if best is None or cost < best:
                            best = cost
                        continue
                    new_cost = cost + self.automaton.skip_weight(target)
                    if new_cost < distances.get(target, new_cost + 1):
                        distances[target] = new_cost
                        heapq.heappush(heap, (new_cost, target))
            nfa_jump[source] = best if best is not None else 0

        jumps: dict[int, int] = {}
        for state in runtime.states:
            values = [nfa_jump.get(nfa_state, 0) for nfa_state in state.nfa_states]
            jumps[state.state_id] = min(values) if values else 0
        return jumps
