"""Chunked-input substrate of the streaming SMP runtime.

The paper's headline property is that one compiled prefilter runs over
documents from 10 MB to 5 GB (Table I) because the runtime only ever looks at
a bounded window of the input.  This module provides the two pieces that make
the Python reproduction genuinely incremental:

* :class:`ChunkCursor` -- a sliding text window addressed by *absolute* stream
  offsets.  Producers append fixed-size chunks at the end; the consumer
  discards everything below a retention floor once it can no longer be
  needed.  The retained carry-over window is sized by the consumer (for the
  SMP runtime: the longest suspended keyword search plus the longest open
  tag), so peak memory is O(chunk + carry window) instead of O(document).
* :func:`iter_chunks` -- a uniform way to turn files, file-like objects,
  whole strings and chunk iterables into a stream of string chunks.

Everything downstream (the resumable matchers, :class:`~repro.core.runtime.
RuntimeStream`, the incremental tokenizer) speaks absolute offsets so that
positions keep their meaning across chunk boundaries and discards.
"""

from __future__ import annotations

from typing import IO, Iterable, Iterator

#: Default chunk size of the streaming entry points (64 KiB, the fixed-size
#: read buffer the paper's prototype uses).
DEFAULT_CHUNK_SIZE = 64 * 1024


class ChunkCursor:
    """A sliding window over a streamed text, addressed by absolute offsets.

    The window holds ``text`` whose first character sits at stream offset
    ``base``; ``end`` is one past the last buffered character.  ``append``
    extends the window on the right, ``discard_to`` shrinks it on the left.
    Consumers must never read below the highest ``discard_to`` floor they
    have announced.
    """

    __slots__ = ("text", "base", "eof")

    def __init__(self) -> None:
        self.text: str = ""
        self.base: int = 0
        self.eof: bool = False

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------
    def append(self, chunk: str) -> None:
        """Append ``chunk`` at the end of the window."""
        if chunk:
            self.text += chunk

    def close(self) -> None:
        """Mark the end of the stream; no further appends are expected."""
        self.eof = True

    # ------------------------------------------------------------------
    # Consumer side
    # ------------------------------------------------------------------
    @property
    def end(self) -> int:
        """Absolute offset one past the last buffered character."""
        return self.base + len(self.text)

    def discard_to(self, position: int) -> None:
        """Drop every buffered character below absolute offset ``position``."""
        if position <= self.base:
            return
        limit = self.end
        if position >= limit:
            self.text = ""
            self.base = limit
            return
        self.text = self.text[position - self.base:]
        self.base = position

    def char(self, position: int) -> str:
        """The character at absolute offset ``position``."""
        return self.text[position - self.base]

    def slice(self, start: int, stop: int) -> str:
        """The characters in ``[start, stop)`` (absolute offsets)."""
        return self.text[start - self.base:stop - self.base]

    def find(self, needle: str, start: int, stop: int | None = None) -> int:
        """``str.find`` in absolute coordinates; returns -1 when absent."""
        local_stop = len(self.text) if stop is None else stop - self.base
        found = self.text.find(needle, max(start - self.base, 0), local_stop)
        return -1 if found < 0 else found + self.base

    def __len__(self) -> int:
        return len(self.text)


def iter_chunks(
    source: str | IO[str] | Iterable[str], chunk_size: int = DEFAULT_CHUNK_SIZE
) -> Iterator[str]:
    """Yield string chunks from any of the supported input shapes.

    ``source`` may be a whole string (sliced into ``chunk_size`` pieces), a
    file-like object with ``read`` (read in ``chunk_size`` pieces), or an
    iterable of string chunks (passed through unchanged -- the caller already
    chose a chunking).
    """
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    if isinstance(source, str):
        for start in range(0, len(source), chunk_size):
            yield source[start:start + chunk_size]
        return
    read = getattr(source, "read", None)
    if callable(read):
        while True:
            chunk = read(chunk_size)
            if not chunk:
                return
            yield chunk
        return
    for chunk in source:
        if chunk:
            yield chunk


def open_chunks(path: str, chunk_size: int = DEFAULT_CHUNK_SIZE) -> Iterator[str]:
    """Read the file at ``path`` as a stream of ``chunk_size`` chunks."""
    with open(path, "r", encoding="utf-8") as handle:
        yield from iter_chunks(handle, chunk_size)
