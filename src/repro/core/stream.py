"""Chunked-input substrate of the streaming SMP runtime.

The paper's headline property is that one compiled prefilter runs over
documents from 10 MB to 5 GB (Table I) because the runtime only ever looks at
a bounded window of the input.  This module provides the two pieces that make
the Python reproduction genuinely incremental:

* :class:`ChunkCursor` -- a sliding window addressed by *absolute* stream
  offsets.  Producers append fixed-size chunks at the end; the consumer
  discards everything below a retention floor once it can no longer be
  needed.  The retained carry-over window is sized by the consumer (for the
  SMP runtime: the longest suspended keyword search plus the longest open
  tag), so peak memory is O(chunk + carry window) instead of O(document).
* :func:`iter_chunks` -- a uniform way to turn files, file-like objects,
  whole strings/byte strings and chunk iterables into a chunk stream.

The cursor is *polymorphic over the chunk type*: it holds ``str`` chunks or
``bytes``-like chunks (``bytes``, ``bytearray``, ``mmap``) with the same
API, adopting the type of the first appended chunk.  The byte-native SMP
runtime always feeds it ``bytes`` (see :mod:`repro.core.sources` for the
input subsystem); the incremental tokenizer keeps feeding ``str``.  For a
binary cursor :meth:`ChunkCursor.char` returns the byte *value* (an ``int``,
like ``bytes`` indexing does) and :meth:`ChunkCursor.slice` returns
``bytes``.

Everything downstream (the resumable matchers, :class:`~repro.core.runtime.
RuntimeStream`, the incremental tokenizer) speaks absolute offsets so that
positions keep their meaning across chunk boundaries and discards.

Cost model
----------
The cursor is a two-part buffer: a merged string plus a list of appended
segments that have not been merged yet.  ``append`` is O(1) (a list append);
``discard_to`` tracks a dead prefix and only compacts the merged string when
the dead prefix reaches half of it, so the total copying across a stream of
n characters is O(n) amortised regardless of chunk size (every character is
merged at most once and compacted away at most a constant number of times).
Consumers that need a contiguous string for C-level searches call
:meth:`ChunkCursor.view`, which merges the pending segments on demand.  A
single appended ``mmap`` chunk is used as the merged buffer directly (no
copy): searches run against the mapped pages and only the slices actually
copied to output materialise as ``bytes``.
"""

from __future__ import annotations

from typing import IO, AnyStr, Iterable, Iterator

#: Default chunk size of the streaming entry points (64 KiB, the fixed-size
#: read buffer the paper's prototype uses).
DEFAULT_CHUNK_SIZE = 64 * 1024

#: ``discard_to`` leaves dead prefixes below this size uncompacted even when
#: they dominate the buffer -- compacting tiny strings costs more than the
#: memory it returns.
_COMPACT_MIN = 512


class ChunkCursor:
    """A sliding window over a streamed text, addressed by absolute offsets.

    The window holds the characters in ``[base, end)`` of the stream.
    ``append`` extends the window on the right, ``discard_to`` shrinks it on
    the left.  Consumers must never read below the highest ``discard_to``
    floor they have announced.

    ``binary`` selects the chunk type up front (``True`` -> ``bytes``,
    ``False`` -> ``str``); without it the cursor adopts the type of the
    first appended chunk.  All offsets are in the native units of that type
    (bytes for a binary cursor, characters for a text cursor).
    """

    __slots__ = (
        "base", "eof", "_buffer", "_start", "_segments", "_segments_length",
        "_adopt",
    )

    def __init__(self, *, binary: bool | None = None) -> None:
        self.base: int = 0
        self.eof: bool = False
        #: Merged text; ``_buffer[_start:]`` is its live part.  Its type is
        #: the cursor's chunk type (``b""`` for binary cursors).
        self._buffer = b"" if binary else ""
        #: True until the chunk type is fixed -- by an explicit ``binary``
        #: argument or by the first appended chunk.
        self._adopt = binary is None
        #: Dead-prefix length inside ``_buffer`` (units below ``base``).
        self._start: int = 0
        #: Appended chunks not merged into ``_buffer`` yet.
        self._segments: list = []
        self._segments_length: int = 0

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------
    def append(self, chunk) -> None:
        """Append ``chunk`` at the end of the window (O(1)).

        A cursor constructed without ``binary`` adopts the type of its
        *first* chunk (``str`` vs bytes-like), so ``ChunkCursor()`` works
        for both text and byte streams.  Once the type is fixed -- by the
        constructor argument or that first chunk -- appending the other
        type raises ``TypeError`` immediately; the type never silently
        flips back, even when the window is fully drained.

        Mutable chunks (``bytearray``, ``memoryview``) are held *borrowed*,
        without copying: searches run directly against them.  A producer
        that recycles such a buffer (the :class:`repro.core.sources.
        BufferPool` ``readinto`` path) must not overwrite it before the
        consumer called :meth:`seal`, which copies the still-needed suffix
        into owned immutable bytes.
        """
        if chunk:
            if self._adopt:
                if isinstance(chunk, str) != isinstance(self._buffer, str):
                    self._buffer = "" if isinstance(chunk, str) else b""
                self._adopt = False
            elif isinstance(chunk, str) != isinstance(self._buffer, str):
                raise TypeError(
                    f"cannot append {type(chunk).__name__!r} chunk to a "
                    f"{'text' if isinstance(self._buffer, str) else 'binary'} "
                    "cursor"
                )
            self._segments.append(chunk)
            self._segments_length += len(chunk)

    def close(self) -> None:
        """Mark the end of the stream; no further appends are expected."""
        self.eof = True

    def rebase(self, base: int) -> None:
        """Move an empty, unstarted cursor to absolute offset ``base``.

        Restoring a checkpointed session re-creates its window in a fresh
        process: the carry-over bytes are appended to a new cursor whose
        origin must be the absolute stream offset they were captured at, so
        every position stored in the snapshot (cursors, copy regions,
        suspended-search offsets) keeps its meaning.  Only valid before any
        append/discard/close -- a live window cannot be rebased.
        """
        if len(self) or self.base or self.eof:
            raise ValueError("rebase() requires a fresh, empty cursor")
        self.base = base

    # ------------------------------------------------------------------
    # Consumer side
    # ------------------------------------------------------------------
    @property
    def binary(self) -> bool:
        """True when the cursor holds bytes-like chunks."""
        return not isinstance(self._buffer, str)

    @property
    def end(self) -> int:
        """Absolute offset one past the last buffered character."""
        return self.base + len(self._buffer) - self._start + self._segments_length

    @property
    def text(self):
        """The live window as one string (copies; prefer :meth:`view`)."""
        return self._merged()[self._start:]

    def discard_to(self, position: int) -> None:
        """Drop every buffered character below absolute offset ``position``.

        Whole dead chunks are dropped by reference; partially dead text is
        only compacted once the dead prefix reaches half of the merged
        buffer, which keeps total copying linear in the stream length.
        """
        if position <= self.base:
            return
        limit = self.end
        if position >= limit:
            self._buffer = self._buffer[:0]
            self._start = 0
            self._segments.clear()
            self._segments_length = 0
            self.base = limit
            return
        self._start += position - self.base
        self.base = position
        buffer_length = len(self._buffer)
        if self._start >= buffer_length:
            # The dead prefix swallowed the whole merged buffer: drop it and
            # any fully dead segments without copying, then promote the first
            # partially live segment to be the new merged buffer.
            dead = self._start - buffer_length
            self._buffer = self._buffer[:0]
            self._start = 0
            while self._segments and dead >= len(self._segments[0]):
                dead -= len(self._segments[0])
                self._segments_length -= len(self._segments[0])
                del self._segments[0]
            if dead:
                promoted = self._segments.pop(0)
                if type(promoted) is memoryview:
                    # memoryview lacks ``find``; own it when it becomes the
                    # searchable merged buffer.
                    promoted = bytes(promoted)
                self._buffer = promoted
                self._segments_length -= len(self._buffer)
                self._start = dead
        elif self._start >= _COMPACT_MIN and self._start * 2 >= buffer_length:
            self._buffer = self._buffer[self._start:]
            self._start = 0

    def view(self):
        """``(buffer, buffer_base)``: one contiguous string plus the absolute
        offset of its first character.

        The buffer may begin with an already-discarded dead prefix below
        ``base``; consumers must only read at or above the positions they
        announced as still needed (which are always >= ``base``).  Pending
        segments are merged on demand, so between two appends the same string
        object is returned and no copying happens.
        """
        return self._merged(), self.base - self._start

    def char(self, position: int):
        """The character at absolute offset ``position``.

        For a binary cursor this is the byte *value* (an ``int``), exactly
        like indexing a ``bytes`` object.
        """
        local = position - self.base + self._start
        if local < len(self._buffer):
            return self._buffer[local]
        local -= len(self._buffer)
        for segment in self._segments:
            if local < len(segment):
                return segment[local]
            local -= len(segment)
        raise IndexError(f"offset {position} is outside the buffered window")

    def slice(self, start: int, stop: int):
        """The characters in ``[start, stop)`` (absolute offsets).

        Binary cursors always return owned ``bytes``, even while the window
        is backed by a borrowed mutable buffer (output fragments outlive the
        producer's buffer reuse).
        """
        low = start - self.base + self._start
        high = stop - self.base + self._start
        if high <= len(self._buffer):
            part = self._buffer[low:high]
        else:
            part = self._merged()[low:high]
        if type(part) is bytearray or type(part) is memoryview:
            return bytes(part)
        return part

    def find(self, needle, start: int, stop: int | None = None) -> int:
        """``find`` in absolute coordinates; returns -1 when absent.

        ``needle`` must match the cursor's chunk type (``bytes`` needles on
        a binary cursor).  When the probed region lies inside the merged
        buffer -- or the whole window is a single appended chunk -- the
        search runs directly on that object, avoiding any materialisation
        per probe.
        """
        buffer_length = len(self._buffer)
        low = max(start - self.base, 0) + self._start
        high = (
            buffer_length + self._segments_length
            if stop is None
            else stop - self.base + self._start
        )
        if high <= buffer_length:
            found = self._buffer.find(needle, low, high)
        elif (
            not buffer_length
            and len(self._segments) == 1
            and type(self._segments[0]) is not memoryview
        ):
            # The window spans a single chunk: search its tail directly
            # (memoryview lacks ``find`` and goes through the merge below).
            found = self._segments[0].find(needle, low, high)
        else:
            found = self._merged().find(needle, low, high)
        return -1 if found < 0 else found - self._start + self.base

    def __len__(self) -> int:
        return len(self._buffer) - self._start + self._segments_length

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _merged(self):
        """Merge any pending segments into the buffer and return it."""
        if self._segments:
            if self._buffer:
                self._segments.insert(0, self._buffer)
            if len(self._segments) == 1:
                merged = self._segments[0]
                if type(merged) is memoryview:
                    merged = bytes(merged)
                self._buffer = merged
            else:
                empty = "" if isinstance(self._buffer, str) else b""
                self._buffer = empty.join(self._segments)
            self._segments.clear()
            self._segments_length = 0
        return self._buffer

    # ------------------------------------------------------------------
    # Borrowed-buffer handoff
    # ------------------------------------------------------------------
    def seal(self) -> None:
        """Take ownership of any borrowed mutable chunk data.

        After :meth:`seal` returns, the window no longer references any
        ``bytearray``/``memoryview`` chunk it was fed: the still-live part
        is copied into immutable ``bytes`` (typically just the small
        carry-over suffix -- the processed prefix was already discarded).
        Producers recycling read buffers (``readinto`` ingestion) call this
        through the runtime after every fed chunk, which is what bounds the
        per-chunk allocation to the carry window instead of the chunk size.
        """
        if self._segments and any(
            type(segment) is bytearray or type(segment) is memoryview
            for segment in self._segments
        ):
            # ``join`` over the live pieces produces owned bytes; a single
            # borrowed segment is promoted and handled below.
            self._merged()
        buffer = self._buffer
        if type(buffer) is bytearray or type(buffer) is memoryview:
            self._buffer = bytes(
                memoryview(buffer)[self._start:] if self._start else buffer
            )
            self._start = 0


def iter_chunks(
    source: AnyStr | IO[AnyStr] | Iterable[AnyStr],
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> Iterator[AnyStr]:
    """Yield chunks from any of the supported input shapes, ``str`` or bytes.

    ``source`` may be a whole string or bytes-like object (sliced into
    ``chunk_size`` pieces), a file-like object with ``read`` (text or
    binary, read in ``chunk_size`` pieces), or an iterable of chunks
    (passed through unchanged -- the caller already chose a chunking).
    Byte-oriented sources with richer semantics (``mmap``, sockets, binary
    stdin) live in :mod:`repro.core.sources`.
    """
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    if isinstance(source, (str, bytes, bytearray, memoryview)):
        for start in range(0, len(source), chunk_size):
            yield source[start:start + chunk_size]
        return
    read = getattr(source, "read", None)
    if callable(read):
        while True:
            chunk = read(chunk_size)
            if not chunk:
                return
            yield chunk
        return
    for chunk in source:
        if chunk:
            yield chunk


def open_chunks(path: str, chunk_size: int = DEFAULT_CHUNK_SIZE) -> Iterator[str]:
    """Read the file at ``path`` as a stream of ``chunk_size`` str chunks.

    This is the *decoding* text path; the byte-native equivalents
    (:func:`repro.core.sources.file_chunks`, ``mmap_chunks``) skip the
    ``bytes -> str`` copy entirely and are what the filter entry points use.
    """
    with open(path, "r", encoding="utf-8") as handle:
        yield from iter_chunks(handle, chunk_size)
