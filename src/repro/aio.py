"""Asyncio serving bridge over the unified dataflow API.

The SMP prefilter is CPU-light per byte (that is the paper's point), which
makes it a natural fit for serving XML streams from an event loop: the
blocking edges are the *network*, not the filter.  This module provides the
two asynchronous entry points the roadmap asked for:

* :func:`async_run` — drive a :class:`repro.api.Engine` from a (sync or
  async) chunk source, delivering every projected fragment through
  ``await sink.write(...)``.  A slow consumer therefore backpressures the
  whole dataflow: the next chunk is not fed until the sinks accepted the
  previous output.
* :func:`serve` — a one-socket-in / N-labelled-streams-out server: each
  connection streams one XML document in, and every query of the engine
  streams its projection back as labelled frames over the same socket,
  multiplexed with a tiny length-prefixed framing (see :func:`write_frame`).
  ``await writer.drain()`` between chunks propagates socket backpressure
  into the filter loop.  Per-connection hardening knobs (``idle_timeout``,
  ``feed_timeout``, ``write_limit``) bound how long a stalled peer or a
  hung worker can pin a connection, and :func:`shutdown` drains in-flight
  documents before tearing the server down.

Example — three queries over one socket::

    import asyncio
    from repro import api, aio

    engine = api.Engine([api.Query(q, dtd) for q in queries])

    async def main():
        server = await aio.serve(engine, host="127.0.0.1", port=8043)
        async with server:
            await server.serve_forever()

    asyncio.run(main())

and from a client::

    outputs = await aio.request("127.0.0.1", 8043, api.Source.from_file("doc.xml"))
    # {label: projected bytes, ...}

By default the filtering runs inline on the event loop (it is a tight
C-backed scan over each chunk).  For multi-core serving pass
``serve(engine, workers=N)``: every connection's session then lives inside
a :class:`repro.parallel.WorkerPool` worker process and each ``feed`` is
dispatched through ``run_in_executor`` -- the loop only shuttles chunks
and frames while N cores filter concurrently, with per-connection frame
ordering unchanged (sticky worker routing, sequential awaits).
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import struct
import threading
from typing import Callable, Mapping, Sequence, Union

from repro import api
from repro.core.stream import DEFAULT_CHUNK_SIZE
from repro.errors import CheckpointError, QueryError, ReproError

__all__ = [
    "FRAME_DATA",
    "FRAME_END",
    "FRAME_ERROR",
    "FRAME_RECORD",
    "FRAME_RESUME",
    "AsyncCallbackSink",
    "AsyncCollectSink",
    "AsyncSink",
    "StreamWriterSink",
    "async_run",
    "read_frame",
    "request",
    "request_records",
    "serve",
    "serve_records",
    "shutdown",
    "write_frame",
]


# ----------------------------------------------------------------------
# Async sinks
# ----------------------------------------------------------------------
class AsyncSink:
    """An ``await``-able output endpoint; slow sinks backpressure the run."""

    #: Chunk-type preference: True = bytes, False = str, None = either.
    binary: bool | None = None

    async def write(self, fragment) -> None:
        raise NotImplementedError

    async def close(self) -> None:
        """Called exactly once when the run finishes (or is abandoned)."""


class AsyncCollectSink(AsyncSink):
    """Accumulate fragments in memory; :meth:`value` joins them.

    Mode-agnostic (``binary=None``); :func:`async_run` stamps the resolved
    output mode onto :attr:`binary` so :meth:`value` returns the right
    empty value even when nothing was projected.
    """

    def __init__(self) -> None:
        self.fragments: list = []

    async def write(self, fragment) -> None:
        self.fragments.append(fragment)

    def value(self):
        if not self.fragments:
            return b"" if self.binary else ""
        empty = b"" if isinstance(self.fragments[0], bytes) else ""
        return empty.join(self.fragments)


class StreamWriterSink(AsyncSink):
    """Stream projected bytes into an :class:`asyncio.StreamWriter`.

    ``write`` writes and then ``await``\\ s :meth:`~asyncio.StreamWriter.
    drain`, so a slow peer throttles the filter loop — this is the
    backpressure edge of the serving bridge.
    """

    binary = True

    def __init__(self, writer: asyncio.StreamWriter, *,
                 close_writer: bool = False) -> None:
        self._writer = writer
        self._close_writer = close_writer

    async def write(self, fragment: bytes) -> None:
        self._writer.write(fragment)
        await self._writer.drain()

    async def close(self) -> None:
        if self._close_writer:
            self._writer.close()
            with contextlib.suppress(ConnectionError):
                await self._writer.wait_closed()


class AsyncCallbackSink(AsyncSink):
    """Adapt an ``async def callback(fragment)`` to the sink protocol."""

    def __init__(self, callback, *, binary: bool | None = None) -> None:
        self.write = callback
        self.binary = binary


AnyAsyncSink = Union[AsyncSink, Callable, None]


def _as_async_sink(sink: AnyAsyncSink) -> AsyncSink | None:
    if sink is None or isinstance(sink, AsyncSink):
        return sink
    if callable(sink):
        return AsyncCallbackSink(sink)
    raise QueryError(f"cannot interpret {sink!r} as an async sink")


def _normalize_async_sinks(
    sinks: "AnyAsyncSink | Sequence[AnyAsyncSink] | Mapping[str, AnyAsyncSink]",
    labels: Sequence[str],
) -> list[AsyncSink | None] | None:
    return api._normalize_sinks(
        sinks, labels, coerce=_as_async_sink, sink_type=AsyncSink
    )


# ----------------------------------------------------------------------
# async_run
# ----------------------------------------------------------------------
async def async_run(
    source,
    engine: api.Engine,
    sinks: "AnyAsyncSink | Sequence[AnyAsyncSink] | Mapping[str, AnyAsyncSink]" = None,
    *,
    binary: bool | None = None,
    live: bool = False,
    chunk_size: int | None = None,
) -> api.EngineRun:
    """Run the dataflow with ``await``-based sinks (backpressure-aware).

    ``source`` may be a :class:`repro.api.Source`, any raw value
    :meth:`repro.api.Source.of` understands, or an **async iterable** of
    chunks (e.g. chunks arriving from an :class:`asyncio.StreamReader`).
    After every fed chunk, each query's newly emitted fragment is delivered
    via ``await sink.write(fragment)`` before the next chunk is read — a
    slow sink therefore throttles the whole run.  Queries without a sink
    accumulate their output on the returned :class:`repro.api.EngineRun`.
    """
    sink_list = _normalize_async_sinks(sinks, engine.labels)
    binary = api._resolve_binary(binary, sink_list)
    for sink in sink_list or ():
        if sink is not None and sink.binary is None:
            sink.binary = binary  # mode-agnostic sinks adopt the run's mode
    session = engine.open(binary=binary, live=live)
    if sink_list is None:
        sink_list = [None] * len(session.handles)
    pieces: list[list] = [[] for _ in session.handles]

    async def dispatch(outputs: list) -> None:
        while len(pieces) < len(outputs):
            pieces.append([])
            sink_list.append(None)
        for index, fragment in enumerate(outputs):
            if not fragment:
                continue
            sink = sink_list[index] if index < len(sink_list) else None
            if sink is None:
                pieces[index].append(fragment)
            else:
                await sink.write(fragment)

    try:
        if hasattr(source, "__aiter__"):
            async for chunk in source:
                await dispatch(session.feed(chunk))
        else:
            with api.Source.of(source, chunk_size=chunk_size).open() as chunks:
                for chunk in chunks:
                    await dispatch(session.feed(chunk))
                await dispatch(session.finish())
        if not session.finished:
            await dispatch(session.finish())
    finally:
        session.close()
        for sink in sink_list:
            if sink is not None:
                await sink.close()
    empty = b"" if binary else ""
    results = [
        api.QueryResult(
            label=handle.label,
            output=empty.join(parts),
            stats=stats,
            compilation=session._compilation(index),
        )
        for index, (handle, parts, stats) in enumerate(
            zip(session.handles, pieces, session.stats)
        )
    ]
    return api.EngineRun(results=results, scan_stats=session.scan_stats)


# ----------------------------------------------------------------------
# Framing: one socket in, N labelled streams out
# ----------------------------------------------------------------------
#: Frame header: kind (1 byte), label length (2 bytes), payload length
#: (4 bytes), network byte order; label and payload bytes follow.
FRAME_HEADER = struct.Struct("!BHI")
FRAME_DATA = 0    #: a projected fragment for the labelled query
FRAME_END = 1     #: the labelled query's stream is complete
FRAME_ERROR = 2   #: the run failed; payload is the error message
FRAME_RESUME = 3  #: server → client: committed input offset to resume from
FRAME_RECORD = 4  #: one record fully projected + checkpointed; payload = index


#: Reused header scratch of :func:`write_frame` -- packed in place and
#: immediately copied into the frame, so no per-frame header allocation.
#: Thread-local: event loops in different threads never share a scratch.
_HEADER_SCRATCH = threading.local()


def write_frame(writer: asyncio.StreamWriter, kind: int, label: bytes,
                payload: bytes) -> None:
    """Serialize one frame onto ``writer`` (buffer only; drain separately).

    The frame is assembled into a single ``write`` call (header packed into
    a reused scratch buffer), which keeps the transport buffer from
    fragmenting into three tiny writes per frame.
    """
    try:
        header = _HEADER_SCRATCH.buffer
    except AttributeError:
        header = _HEADER_SCRATCH.buffer = bytearray(FRAME_HEADER.size)
    FRAME_HEADER.pack_into(header, 0, kind, len(label), len(payload))
    if label or payload:
        writer.write(b"".join((header, label, payload)))
    else:
        writer.write(bytes(header))


async def read_frame(reader: asyncio.StreamReader):
    """Read one frame; returns ``(kind, label, payload)`` or None at EOF."""
    try:
        header = await reader.readexactly(FRAME_HEADER.size)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise
    kind, label_length, payload_length = FRAME_HEADER.unpack(header)
    label = await reader.readexactly(label_length) if label_length else b""
    payload = (
        await reader.readexactly(payload_length) if payload_length else b""
    )
    return kind, label, payload


# ----------------------------------------------------------------------
# The server
# ----------------------------------------------------------------------
class _ServeTimeout(Exception):
    """Internal: a per-connection timeout fired (reported as FRAME_ERROR).

    Deliberately *not* ``TimeoutError``: the builtin is an ``OSError``
    subclass, and the handler swallows socket-level ``OSError`` quietly --
    a timeout must instead reach the client as an error frame.
    """


async def _timed(awaitable, timeout: "float | None", what: str):
    if timeout is None:
        return await awaitable
    try:
        return await asyncio.wait_for(awaitable, timeout)
    except asyncio.TimeoutError:
        raise _ServeTimeout(what) from None


async def serve(
    engine: api.Engine,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    workers: int = 0,
    worker_pool=None,
    idle_timeout: "float | None" = None,
    feed_timeout: "float | None" = None,
    write_limit: "int | None" = None,
) -> asyncio.Server:
    """Serve the engine's queries over TCP: one document per connection.

    A client streams one UTF-8 XML document and half-closes the write side
    (``write_eof``); the server streams back every query's projection as
    labelled :data:`FRAME_DATA` frames interleaved in emission order,
    closing each stream with :data:`FRAME_END` — N labelled output streams
    multiplexed over the one socket.  Filter failures (non-conforming
    documents) produce one :data:`FRAME_ERROR` frame.  ``await drain()``
    after each fed chunk propagates the client's read backpressure into the
    filter loop.

    With ``workers=N`` (or an explicit :class:`repro.parallel.WorkerPool`
    via ``worker_pool``) every connection's session lives inside a worker
    *process* and each ``feed`` is dispatched through ``run_in_executor``:
    the byte-scanning CPU work leaves the event loop, so N cores serve N
    connections concurrently while the loop only shuttles chunks and
    frames.  A connection's chunks always reach its one worker in order,
    so per-connection frame ordering is identical to in-loop filtering.
    The created pool is exposed as ``server.worker_pool``; close it
    (``server.worker_pool.close()``) when done serving, or let
    :func:`shutdown` do both.

    Hardening knobs (all default off, preserving pre-existing behaviour):

    * ``idle_timeout`` — seconds to wait for the *client's next chunk*; on
      expiry the client gets a :data:`FRAME_ERROR` and the connection
      closes, so an abandoned half-open connection cannot pin a session
      (or a pool worker) forever.
    * ``feed_timeout`` — seconds allowed per ``feed``/``finish`` call
      (relevant with ``worker_pool``, where each call round-trips to a
      worker process that may have died or hung).
    * ``write_limit`` — high-water mark in bytes for the per-connection
      transport buffer.  ``drain()`` then blocks as soon as this many
      bytes are un-acked, bounding the frames in flight towards a slow
      consumer instead of buffering the whole projection in memory.

    Every connection handler task is tracked on ``server.connections``;
    :func:`shutdown` uses that set to drain in-flight documents before
    tearing the server down.

    Returns the started :class:`asyncio.Server` (use ``server.sockets`` for
    the bound port when ``port=0``).
    """
    owns_pool = False
    if workers and worker_pool is None:
        from repro.parallel import WorkerPool

        worker_pool = WorkerPool(engine, workers)
        owns_pool = True

    connections: set[asyncio.Task] = set()

    async def handle(reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        connections.add(task)
        try:
            await handle_connection(
                engine, reader, writer, chunk_size=chunk_size,
                worker_pool=worker_pool, idle_timeout=idle_timeout,
                feed_timeout=feed_timeout, write_limit=write_limit,
            )
        finally:
            connections.discard(task)

    server = await asyncio.start_server(handle, host=host, port=port)
    server.worker_pool = worker_pool
    server.connections = connections
    server._owns_worker_pool = owns_pool
    return server


async def shutdown(server: asyncio.Server, *,
                   timeout: "float | None" = None) -> None:
    """Gracefully stop a :func:`serve` server: drain, then tear down.

    Closes the listening socket first (new connections are refused
    immediately), then waits up to ``timeout`` seconds for the in-flight
    connection handlers tracked on ``server.connections`` to finish their
    documents.  Handlers still running after the deadline are cancelled.
    A worker pool that :func:`serve` created itself (``workers=N``) is
    closed as well; an explicitly supplied ``worker_pool`` stays open --
    its owner decides its lifetime.
    """
    server.close()
    pending = {
        task for task in getattr(server, "connections", ())
        if not task.done()
    }
    if pending:
        done, stragglers = await asyncio.wait(pending, timeout=timeout)
        for task in stragglers:
            task.cancel()
        if stragglers:
            await asyncio.gather(*stragglers, return_exceptions=True)
    pool = getattr(server, "worker_pool", None)
    if pool is not None and getattr(server, "_owns_worker_pool", False):
        await asyncio.get_running_loop().run_in_executor(None, pool.close)


async def handle_connection(
    engine: api.Engine,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    *,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    worker_pool=None,
    idle_timeout: "float | None" = None,
    feed_timeout: "float | None" = None,
    write_limit: "int | None" = None,
) -> None:
    """Filter one connection's document; used by :func:`serve` per client.

    With ``worker_pool`` the session lives in a worker process and every
    ``feed``/``finish`` round-trips through the default executor, keeping
    the event loop free for other connections.

    Failure containment is per connection: a malformed document, a timeout
    or any unexpected error produces one :data:`FRAME_ERROR` frame and a
    clean close; a client that vanished mid-stream (reset, abort, EOF at
    the TCP layer) is dropped quietly.  Neither case disturbs the other
    connections or the server itself.
    """
    session = None
    if write_limit is not None:
        writer.transport.set_write_buffer_limits(high=write_limit)
    try:
        # Session setup is inside the error envelope: with a worker pool it
        # round-trips to another process and can fail (dead worker, closed
        # pool) -- the client still deserves its FRAME_ERROR and a closed
        # connection rather than a hang.
        if worker_pool is not None:
            loop = asyncio.get_running_loop()
            session = await loop.run_in_executor(
                None, lambda: worker_pool.open_session(binary=True)
            )
            labels = [label.encode("utf-8") for label in session.labels]

            async def feed(chunk):
                return await loop.run_in_executor(None, session.feed, chunk)

            async def finish():
                return await loop.run_in_executor(None, session.finish)
        else:
            session = engine.open(binary=True)
            labels = [
                handle.label.encode("utf-8") for handle in session.handles
            ]

            async def feed(chunk):
                return session.feed(chunk)

            async def finish():
                return session.finish()

        while True:
            chunk = await _timed(
                reader.read(chunk_size), idle_timeout,
                f"idle timeout: no data from client for {idle_timeout} s",
            )
            if not chunk:
                break
            outputs = await _timed(
                feed(chunk), feed_timeout,
                f"feed timeout: filter made no progress in {feed_timeout} s",
            )
            _write_outputs(writer, labels, outputs)
            await writer.drain()
        outputs = await _timed(
            finish(), feed_timeout,
            f"feed timeout: finish made no progress in {feed_timeout} s",
        )
        _write_outputs(writer, labels, outputs)
        for label in labels:
            write_frame(writer, FRAME_END, label, b"")
        await writer.drain()
    except asyncio.CancelledError:
        raise
    except (ConnectionError, asyncio.IncompleteReadError, OSError):
        pass  # the client went away mid-stream; nobody left to tell
    except Exception as error:  # noqa: BLE001 -- error frame, not task death
        message = str(error) or error.__class__.__name__
        if not isinstance(error, (ReproError, _ServeTimeout)):
            message = f"{error.__class__.__name__}: {message}"
        with contextlib.suppress(OSError):
            write_frame(writer, FRAME_ERROR, b"", message.encode("utf-8"))
            await writer.drain()
    finally:
        if session is not None:
            with contextlib.suppress(Exception):
                session.close()
        writer.close()
        with contextlib.suppress(OSError):
            await writer.wait_closed()


def _write_outputs(writer: asyncio.StreamWriter, labels: list[bytes],
                   outputs: list) -> None:
    for label, fragment in zip(labels, outputs):
        if fragment:
            write_frame(writer, FRAME_DATA, label, fragment)


# ----------------------------------------------------------------------
# Record streams: checkpoint at record boundaries, resume after reconnect
# ----------------------------------------------------------------------
async def serve_records(
    engine: api.Engine,
    *,
    end_tag: "bytes | str",
    checkpoint: "str | os.PathLike",
    host: str = "127.0.0.1",
    port: int = 0,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    idle_timeout: "float | None" = None,
) -> asyncio.Server:
    """Serve a resumable record stream (MEDLINE-style ``tail`` feeds).

    A client streams many concatenated documents (records, each ending in
    ``end_tag``, the unit :meth:`repro.api.Source.from_records` splits on).
    The server filters each complete record through a fresh session, frames
    every query's projection back (:data:`FRAME_DATA` per label, then one
    :data:`FRAME_RECORD` whose payload is the decimal record index), and
    **checkpoints at the record boundary**: after each record the committed
    input offset and record index are written atomically to ``checkpoint``
    (checksummed, see :mod:`repro.checkpoint`).

    Resume-after-reconnect: on every new connection the server first sends
    a :data:`FRAME_RESUME` frame whose payload is the committed input
    offset in decimal ASCII.  A reconnecting client seeks its stream to
    that offset and continues — records the server already projected and
    checkpointed are never re-sent and never re-emitted (exactly-once
    output across reconnects).  Bytes after the last committed boundary
    (a partially transmitted record) are re-sent by the client and
    re-filtered from scratch.

    A checkpoint file that exists but fails its checksum, or that was
    captured under a different query set or ``end_tag``, raises
    :class:`~repro.errors.CheckpointError` at connection time (reported to
    the client as a :data:`FRAME_ERROR`) — it is never silently ignored.
    """
    from repro.checkpoint import read_checkpoint, write_checkpoint

    end = end_tag.encode("utf-8") if isinstance(end_tag, str) else bytes(end_tag)
    checkpoint_path = os.fspath(checkpoint)
    fingerprints = engine._query_fingerprints()
    connections: set[asyncio.Task] = set()
    lock = asyncio.Lock()  # one committing connection at a time

    def load_state() -> tuple[int, int]:
        if not os.path.exists(checkpoint_path):
            return 0, 0
        snapshot = read_checkpoint(checkpoint_path)
        if snapshot.get("kind") != "records":
            raise CheckpointError(
                f"{checkpoint_path!r} is not a record-stream checkpoint"
            )
        if snapshot.get("query_hashes") != fingerprints:
            raise CheckpointError(
                "record-stream checkpoint was captured under a different "
                "query set; refusing to resume"
            )
        if snapshot.get("end_tag") != end:
            raise CheckpointError(
                "record-stream checkpoint was captured with a different "
                "record end tag; refusing to resume"
            )
        return int(snapshot["input_offset"]), int(snapshot["record_index"])

    def commit(offset: int, index: int) -> None:
        write_checkpoint(checkpoint_path, {
            "kind": "records",
            "version": 1,
            "input_offset": offset,
            "record_index": index,
            "query_hashes": fingerprints,
            "end_tag": end,
        })

    async def handle(reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        connections.add(task)
        try:
            async with lock:
                await _handle_records(
                    engine, reader, writer, end=end,
                    load_state=load_state, commit=commit,
                    chunk_size=chunk_size, idle_timeout=idle_timeout,
                )
        finally:
            connections.discard(task)

    server = await asyncio.start_server(handle, host=host, port=port)
    server.worker_pool = None
    server.connections = connections
    server._owns_worker_pool = False
    return server


async def _handle_records(
    engine: api.Engine,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    *,
    end: bytes,
    load_state,
    commit,
    chunk_size: int,
    idle_timeout: "float | None",
) -> None:
    """One record-stream connection: resume handshake, filter, commit."""
    loop_labels = [label.encode("utf-8") for label in engine.labels]
    try:
        offset, record_index = load_state()
        write_frame(writer, FRAME_RESUME, b"", str(offset).encode("ascii"))
        await writer.drain()

        buffer = bytearray()
        while True:
            chunk = await _timed(
                reader.read(chunk_size), idle_timeout,
                f"idle timeout: no data from client for {idle_timeout} s",
            )
            if not chunk:
                break
            buffer += chunk
            while True:
                position = buffer.find(end)
                if position < 0:
                    break
                record = bytes(buffer[:position + len(end)])
                del buffer[:position + len(end)]
                session = engine.open(binary=True)
                try:
                    pieces: list[list] = [[] for _ in loop_labels]
                    for outputs in (session.feed(record), session.finish()):
                        for index, fragment in enumerate(outputs):
                            if fragment:
                                pieces[index].append(fragment)
                finally:
                    session.close()
                for label, parts in zip(loop_labels, pieces):
                    if parts:
                        write_frame(writer, FRAME_DATA, label, b"".join(parts))
                offset += len(record)
                commit(offset, record_index + 1)
                write_frame(
                    writer, FRAME_RECORD, b"",
                    str(record_index).encode("ascii"),
                )
                record_index += 1
                await writer.drain()
        for label in loop_labels:
            write_frame(writer, FRAME_END, label, b"")
        await writer.drain()
    except asyncio.CancelledError:
        raise
    except (ConnectionError, asyncio.IncompleteReadError, OSError):
        pass  # the client went away; its unprocessed tail is re-sent later
    except Exception as error:  # noqa: BLE001 -- error frame, not task death
        message = str(error) or error.__class__.__name__
        if not isinstance(error, (ReproError, _ServeTimeout)):
            message = f"{error.__class__.__name__}: {message}"
        with contextlib.suppress(OSError):
            write_frame(writer, FRAME_ERROR, b"", message.encode("utf-8"))
            await writer.drain()
    finally:
        writer.close()
        with contextlib.suppress(OSError):
            await writer.wait_closed()


async def request_records(
    host: str,
    port: int,
    source,
    *,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> "tuple[int, dict[int, dict[str, bytes]]]":
    """Client for :func:`serve_records`: stream records, honour resume.

    Reads the server's :data:`FRAME_RESUME` offset first, skips that many
    bytes of ``source`` (records the server already committed), streams
    the rest and collects the per-record projections.  Returns
    ``(resume_offset, {record_index: {label: bytes}})`` — the caller can
    verify exactly-once processing across reconnects by unioning the maps.

    A producer that died mid-record simply streams a truncated ``source``:
    the server projects and commits every *complete* record it received,
    and the bytes after the last record boundary are re-sent on the next
    connection (the :data:`FRAME_RESUME` offset never points mid-record).
    """
    from repro.checkpoint import resume_chunks

    reader, writer = await asyncio.open_connection(host, port)
    try:
        frame = await read_frame(reader)
        if frame is not None and frame[0] == FRAME_ERROR:
            raise ReproError(
                f"server error: {frame[2].decode('utf-8', 'replace')}"
            )
        if frame is None or frame[0] != FRAME_RESUME:
            raise ReproError("server did not offer a resume offset")
        resume_offset = int(frame[2].decode("ascii"))

        records: dict[int, dict[str, bytes]] = {}
        pending: dict[str, list[bytes]] = {}

        async def pump() -> None:
            while True:
                frame = await read_frame(reader)
                if frame is None:
                    return
                kind, label_bytes, payload = frame
                if kind == FRAME_ERROR:
                    raise ReproError(
                        f"server error: {payload.decode('utf-8', 'replace')}"
                    )
                if kind == FRAME_DATA:
                    label = label_bytes.decode("utf-8")
                    pending.setdefault(label, []).append(payload)
                elif kind == FRAME_RECORD:
                    index = int(payload.decode("ascii"))
                    records[index] = {
                        label: b"".join(parts)
                        for label, parts in pending.items()
                    }
                    pending.clear()

        # Frames are consumed concurrently with the upload so a projection
        # larger than the socket buffers cannot deadlock the exchange.
        pump_task = asyncio.ensure_future(pump())
        try:
            with api.Source.of(source, chunk_size=chunk_size).open() as chunks:
                for chunk in resume_chunks(chunks, resume_offset):
                    if isinstance(chunk, str):
                        chunk = chunk.encode("utf-8")
                    writer.write(chunk)
                    await writer.drain()
            writer.write_eof()
            await pump_task
        finally:
            if not pump_task.done():
                pump_task.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await pump_task
        return resume_offset, records
    finally:
        writer.close()
        with contextlib.suppress(ConnectionError, OSError):
            await writer.wait_closed()


async def request(
    host: str,
    port: int,
    source,
    *,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> dict[str, bytes]:
    """Client for :func:`serve`: send one document, demux the responses.

    Streams ``source`` (a :class:`repro.api.Source` or raw value) to the
    server, half-closes, and collects every labelled stream until all
    :data:`FRAME_END` frames arrived.  Returns ``{label: projected bytes}``;
    a :data:`FRAME_ERROR` frame raises :class:`~repro.errors.ReproError`.
    """
    reader, writer = await asyncio.open_connection(host, port)
    try:
        with api.Source.of(source, chunk_size=chunk_size).open() as chunks:
            for chunk in chunks:
                if isinstance(chunk, str):
                    chunk = chunk.encode("utf-8")
                writer.write(chunk)
                await writer.drain()
        writer.write_eof()
        outputs: dict[str, list[bytes]] = {}
        # Read to connection close: the client cannot know the label set up
        # front (a label whose only frame is its END may arrive last), and
        # the server closes the connection right after the END frames.
        while True:
            frame = await read_frame(reader)
            if frame is None:
                break
            kind, label_bytes, payload = frame
            label = label_bytes.decode("utf-8")
            if kind == FRAME_ERROR:
                raise ReproError(
                    f"server error: {payload.decode('utf-8', 'replace')}"
                )
            if kind == FRAME_DATA:
                outputs.setdefault(label, []).append(payload)
            elif kind == FRAME_END:
                outputs.setdefault(label, [])
        return {label: b"".join(parts) for label, parts in outputs.items()}
    finally:
        writer.close()
        with contextlib.suppress(ConnectionError):
            await writer.wait_closed()