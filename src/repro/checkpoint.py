"""Durable session checkpoints: versioned, checksummed, atomically written.

The paper's whole pitch is that the streaming state of an SMP prefilter is
*tiny* -- an automaton state, a handful of cursor offsets and the bounded
carry-over window -- and resumable at any byte boundary.  This module makes
that state durable: a :class:`Checkpoint` is a snapshot of a complete
streaming session (cursor carry-over bytes, tokenizer/runtime state, the
per-query stream states, all statistics counters and the attached query
set, keyed by plan hashes) that survives a process kill and restores into a
fresh process with byte-identical continuation.

File format (version 1)
-----------------------
A checkpoint file is one header line followed by an exact-length payload::

    REPRO-CHECKPOINT v1 <sha256-hex> <payload-length>\n
    <payload bytes ...>

The payload is canonical JSON (sorted keys, no whitespace drift) encoding
the snapshot dictionary; embedded byte strings are wrapped as
``{"__b64__": "..."}`` markers.  The header commits to both the payload
length and its SHA-256, so *any* torn write (truncation at an arbitrary
byte), bit flip or concatenation damage is detected on read and rejected
with :class:`~repro.errors.CheckpointError` -- a checkpoint is restored
whole or not at all, never partially.

Writes are atomic: the payload goes to a temporary file in the target
directory, is flushed and ``fsync``-ed, and then ``os.replace``-d over the
destination, so a crash mid-write leaves either the old checkpoint or the
new one, never a hybrid.

The snapshot dictionaries themselves are produced and consumed by the
execution layers (``RuntimeStream.export_state`` /
``MultiQuerySession.export_state`` and friends); this module is only the
durable envelope plus the :class:`Checkpoint` convenience wrapper used by
:meth:`repro.api.Session.checkpoint` and ``repro.api.Engine.open(resume=...)``.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import tempfile
from typing import Any

from repro.errors import CheckpointError

__all__ = [
    "CHECKPOINT_MAGIC",
    "CHECKPOINT_VERSION",
    "Checkpoint",
    "CorpusJournal",
    "JOURNAL_MAGIC",
    "JOURNAL_VERSION",
    "decode_payload",
    "encode_payload",
    "query_fingerprint",
    "read_checkpoint",
    "resume_chunks",
    "write_checkpoint",
]

CHECKPOINT_MAGIC = b"REPRO-CHECKPOINT"
CHECKPOINT_VERSION = 1

JOURNAL_MAGIC = "repro-corpus"
JOURNAL_VERSION = 1

#: Refuse to parse absurd header claims (a corrupted length field must not
#: make the reader allocate unbounded memory).
_MAX_PAYLOAD = 1 << 31


# ----------------------------------------------------------------------
# JSON payload encoding (bytes-aware)
# ----------------------------------------------------------------------
def _mark_bytes(value):
    """Recursively wrap ``bytes`` values as base64 markers for JSON."""
    if isinstance(value, (bytes, bytearray, memoryview)):
        return {"__b64__": base64.b64encode(bytes(value)).decode("ascii")}
    if isinstance(value, dict):
        return {key: _mark_bytes(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_mark_bytes(item) for item in value]
    return value


def _unmark_bytes(value):
    """Invert :func:`_mark_bytes` after JSON parsing."""
    if isinstance(value, dict):
        if set(value) == {"__b64__"}:
            return base64.b64decode(value["__b64__"])
        return {key: _unmark_bytes(item) for key, item in value.items()}
    if isinstance(value, list):
        return [_unmark_bytes(item) for item in value]
    return value


def encode_payload(snapshot: dict) -> bytes:
    """Serialise a snapshot dictionary to canonical checkpoint payload bytes."""
    try:
        marked = _mark_bytes(snapshot)
        text = json.dumps(marked, sort_keys=True, separators=(",", ":"))
    except (TypeError, ValueError) as error:
        raise CheckpointError(
            f"session state is not serialisable: {error}"
        ) from error
    return text.encode("utf-8")


def decode_payload(payload: bytes) -> dict:
    """Parse checkpoint payload bytes back into the snapshot dictionary."""
    try:
        value = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as error:
        raise CheckpointError(
            f"checkpoint payload is not valid JSON: {error}"
        ) from error
    if not isinstance(value, dict):
        raise CheckpointError("checkpoint payload is not a snapshot object")
    return _unmark_bytes(value)


# ----------------------------------------------------------------------
# The durable envelope
# ----------------------------------------------------------------------
def write_checkpoint(path: str, snapshot: dict) -> None:
    """Atomically write ``snapshot`` as a checkpoint file at ``path``.

    The payload is written to a temporary sibling, flushed and fsync-ed,
    then renamed over ``path`` (``os.replace``), so a crash mid-write never
    leaves a half-written checkpoint under the destination name.
    """
    payload = encode_payload(snapshot)
    digest = hashlib.sha256(payload).hexdigest()
    header = b"%s v%d %s %d\n" % (
        CHECKPOINT_MAGIC, CHECKPOINT_VERSION, digest.encode("ascii"),
        len(payload),
    )
    directory = os.path.dirname(os.path.abspath(path))
    descriptor, temp_path = tempfile.mkstemp(
        prefix=".checkpoint-", dir=directory
    )
    try:
        with os.fdopen(descriptor, "wb") as handle:
            handle.write(header)
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_path, path)
    except BaseException:
        with _suppress_oserror():
            os.unlink(temp_path)
        raise


class _suppress_oserror:
    def __enter__(self):
        return self

    def __exit__(self, exc_type, *exc_info):
        return exc_type is not None and issubclass(exc_type, OSError)


def read_checkpoint(path: str) -> dict:
    """Read and verify the checkpoint at ``path``; return its snapshot.

    Raises :class:`~repro.errors.CheckpointError` for *any* damage: missing
    or malformed header, unsupported version, truncated payload, trailing
    garbage, or checksum mismatch.  A damaged checkpoint is never partially
    restored.
    """
    try:
        with open(path, "rb") as handle:
            header = handle.readline(256)
            rest = handle.read(_MAX_PAYLOAD)
    except OSError as error:
        raise CheckpointError(
            f"cannot read checkpoint {path!r}: {error}"
        ) from error
    parts = header.split()
    if (
        len(parts) != 4
        or parts[0] != CHECKPOINT_MAGIC
        or not header.endswith(b"\n")
    ):
        raise CheckpointError(
            f"{path!r} is not a checkpoint file (bad or truncated header)"
        )
    if parts[1] != b"v%d" % CHECKPOINT_VERSION:
        raise CheckpointError(
            f"unsupported checkpoint version {parts[1].decode('ascii', 'replace')!r} "
            f"in {path!r} (this build reads v{CHECKPOINT_VERSION})"
        )
    try:
        length = int(parts[3])
    except ValueError:
        length = -1
    if length < 0 or length > _MAX_PAYLOAD:
        raise CheckpointError(f"corrupt checkpoint length field in {path!r}")
    if len(rest) != length:
        raise CheckpointError(
            f"checkpoint {path!r} is damaged: payload is {len(rest)} bytes, "
            f"header promises {length} (torn write or trailing garbage)"
        )
    digest = hashlib.sha256(rest).hexdigest().encode("ascii")
    if digest != parts[2]:
        raise CheckpointError(
            f"checkpoint {path!r} failed its checksum; refusing to restore "
            "corrupted session state"
        )
    return decode_payload(rest)


class Checkpoint:
    """A verified, in-memory session checkpoint.

    Obtained from :meth:`repro.api.Session.checkpoint` (a fresh snapshot)
    or :meth:`Checkpoint.load` (read back from disk, checksum-verified).
    ``snapshot`` is the raw state dictionary the execution layers restore
    from; the convenience properties expose the resume coordinates the
    driving loop needs (where to re-feed the input from, how much output
    the checkpointed run had already emitted).
    """

    __slots__ = ("snapshot",)

    def __init__(self, snapshot: dict) -> None:
        self.snapshot = snapshot

    @classmethod
    def load(cls, path: str) -> "Checkpoint":
        """Read, verify and wrap the checkpoint file at ``path``."""
        return cls(read_checkpoint(os.fspath(path)))

    def save(self, path: str) -> None:
        """Atomically write this checkpoint to ``path``."""
        write_checkpoint(os.fspath(path), self.snapshot)

    # ------------------------------------------------------------------
    # Resume coordinates
    # ------------------------------------------------------------------
    @property
    def kind(self) -> str:
        """Snapshot kind: ``"session"`` (streaming) snapshots today."""
        return self.snapshot.get("kind", "session")

    @property
    def input_offset(self) -> int:
        """Absolute input byte offset to re-feed the source from.

        Everything below this offset is already folded into the captured
        state; resuming means feeding the source's bytes from here on.
        """
        return int(self.snapshot.get("input_offset", 0))

    @property
    def output_sizes(self) -> list[int]:
        """Per-query output sizes (bytes/chars) already emitted at capture.

        A resume driver appending to the original output must truncate it
        to these sizes first: the checkpoint may be older than the crash
        point, in which case the resumed session legitimately re-emits the
        output produced between capture and crash.
        """
        return [int(size) for size in self.snapshot.get("output_sizes", [])]

    @property
    def query_hashes(self) -> list[str]:
        """Digests of the query set the checkpoint was captured under."""
        return list(self.snapshot.get("query_hashes", []))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Checkpoint(kind={self.kind!r}, "
            f"input_offset={self.input_offset})"
        )


def query_fingerprint(paths, backend: str, add_default_paths: bool,
                      label: str) -> str:
    """A stable digest of one query's plan-cache identity.

    Checkpoints store one fingerprint per attached query;
    ``Engine.open(resume=...)`` refuses (``CheckpointError``) to restore
    into an engine whose query set does not match, because the captured
    automaton state rows are only meaningful against the same compiled
    tables.  DTD object identity cannot cross processes, so the
    fingerprint hashes the query's observable identity: its sorted path
    strings, backend and flags.
    """
    text = "\x1f".join(
        [",".join(sorted(str(path) for path in paths)), backend,
         "1" if add_default_paths else "0", label]
    )
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:32]


def resume_chunks(chunks, offset: int):
    """Skip the first ``offset`` input bytes of a chunk iterable.

    The resume driver's input shim: a restored session already holds
    everything below the checkpoint's :attr:`Checkpoint.input_offset`, so
    the original source is replayed with that prefix dropped.  ``str``
    chunks are UTF-8 encoded first (offsets are byte offsets).  Raises
    :class:`~repro.errors.CheckpointError` when the source ends before the
    offset -- the checkpoint cannot belong to this input.
    """
    remaining = int(offset)
    for chunk in chunks:
        if isinstance(chunk, str):
            chunk = chunk.encode("utf-8")
        if remaining:
            if len(chunk) <= remaining:
                remaining -= len(chunk)
                continue
            chunk = chunk[remaining:]
            remaining = 0
        yield chunk
    if remaining:
        raise CheckpointError(
            f"input source ended {remaining} bytes before the checkpoint's "
            "resume offset; the checkpoint does not belong to this input"
        )


class CorpusJournal:
    """Append-only JSONL journal of merged corpus-run outcomes.

    One line per *merged* document success (written after the parent has
    folded the document's outputs into the run, so a journaled document is
    exactly-once by construction)::

        {"journal":"repro-corpus","version":1,"queries":[...],"binary":...}
        {"index":0,"name":"a.xml","outputs":[...],"stats":[...],"scan_stats":...}
        ...

    Durability model: every record is flushed to the OS (no fsync) -- the
    page cache survives a SIGKILL of the process, which is the failure this
    journal exists for; a machine-level crash at worst loses trailing
    records, which are then simply re-executed.  On resume the journal is
    replayed: completed documents are served from their journaled outputs
    instead of being re-run, a torn or unparseable tail line is discarded
    as in-flight work (the file is truncated back to the last valid line
    before appending), and a header whose query fingerprints do not match
    the resuming engine raises :class:`~repro.errors.CheckpointError`.
    """

    def __init__(self, path: str, query_hashes: list[str], binary: bool) -> None:
        self.path = os.fspath(path)
        self.query_hashes = list(query_hashes)
        self.binary = bool(binary)
        #: Original corpus index -> journaled record (outputs unmarked).
        self.completed: dict[int, dict] = {}
        self._handle = None

    @classmethod
    def resume(cls, path: str, query_hashes, binary: bool) -> "CorpusJournal":
        """Open (or create) the journal at ``path`` for one corpus run.

        An existing journal is verified against the engine's query
        fingerprints and replayed into :attr:`completed`; a fresh file gets
        the header line.  The returned journal is open for appending.
        """
        journal = cls(path, list(query_hashes), binary)
        if os.path.exists(journal.path) and os.path.getsize(journal.path) > 0:
            valid_end = journal._load_existing()
            handle = open(journal.path, "r+b")
            handle.truncate(valid_end)
            handle.seek(valid_end)
            journal._handle = handle
        else:
            journal._handle = open(journal.path, "wb")
            journal._write_line(
                {
                    "journal": JOURNAL_MAGIC,
                    "version": JOURNAL_VERSION,
                    "queries": journal.query_hashes,
                    "binary": journal.binary,
                }
            )
        return journal

    def _load_existing(self) -> int:
        """Replay the journal; returns the end offset of the valid prefix."""
        with open(self.path, "rb") as handle:
            data = handle.read()
        position = 0
        header_seen = False
        while True:
            newline = data.find(b"\n", position)
            if newline < 0:
                break  # unterminated tail: in-flight write, discard
            line = data[position : newline]
            try:
                entry = _unmark_bytes(json.loads(line.decode("utf-8")))
                if not isinstance(entry, dict):
                    raise ValueError("not an object")
            except (UnicodeDecodeError, ValueError):
                break  # damaged tail: discard from here on
            if not header_seen:
                if (
                    entry.get("journal") != JOURNAL_MAGIC
                    or entry.get("version") != JOURNAL_VERSION
                ):
                    raise CheckpointError(
                        f"{self.path!r} is not a v{JOURNAL_VERSION} corpus "
                        "journal"
                    )
                if list(entry.get("queries", [])) != self.query_hashes:
                    raise CheckpointError(
                        f"corpus journal {self.path!r} was written for a "
                        "different query set; refusing to resume"
                    )
                if bool(entry.get("binary")) != self.binary:
                    raise CheckpointError(
                        f"corpus journal {self.path!r} was written in a "
                        "different output mode; refusing to resume"
                    )
                header_seen = True
            else:
                try:
                    index = int(entry["index"])
                except (KeyError, TypeError, ValueError):
                    break
                self.completed[index] = entry
            position = newline + 1
        if not header_seen:
            raise CheckpointError(
                f"{self.path!r} is not a corpus journal (no valid header)"
            )
        return position

    def _write_line(self, entry: dict) -> None:
        text = json.dumps(
            _mark_bytes(entry), sort_keys=True, separators=(",", ":")
        )
        self._handle.write(text.encode("utf-8") + b"\n")
        self._handle.flush()

    def record(
        self,
        index: int,
        name: str,
        outputs,
        stats,
        scan_stats=None,
    ) -> None:
        """Journal one merged document success.

        ``outputs`` are the per-query outputs (``bytes`` or ``str``),
        ``stats`` the per-query statistic state dictionaries
        (:meth:`~repro.core.stats.RunStatistics.export_state`), and
        ``scan_stats`` the shared-scan state dictionary, if any.
        """
        self._write_line(
            {
                "index": int(index),
                "name": name,
                "outputs": list(outputs),
                "stats": list(stats),
                "scan_stats": scan_stats,
            }
        )

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "CorpusJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def is_serialisable(value: Any) -> bool:
    """True when ``value`` survives the checkpoint payload round trip."""
    try:
        encode_payload({"probe": value})
    except CheckpointError:
        return False
    return True
