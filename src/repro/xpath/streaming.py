"""Streaming XPath evaluation over SAX events (the SPEX analogue).

SPEX [Olteanu 2007] evaluates XPath over XML streams with bounded buffering.
This module provides a comparable engine for the supported XPath subset: the
query's *spine* (the chain of element-name steps) is matched against the
stream with a stack of partial matches; once the stream reaches the deepest
spine step that still needs look-ahead (a step carrying predicates, or the
result step itself), the corresponding subtree is buffered, the remaining
path and predicates are evaluated on the buffer with the in-memory
evaluator, and matching results are emitted.

The engine processes every SAX event, i.e. it tokenizes its complete input -
that is precisely the property the paper exploits when it shows that
pipelining SMP prefiltering in front of such an engine lifts its throughput
(Figure 7(b)).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from typing import Iterable

from repro.errors import QueryError
from repro.xml.sax import SaxHandler, SaxSession, parse_with_handler
from repro.xml.tree import XmlElement
from repro.xpath.ast import LocationPath, NodeTestKind, Step, XPathAxis
from repro.xpath.evaluator import ResultItem, evaluate_predicate, evaluate_relative
from repro.xpath.parser import parse_xpath


@dataclass
class StreamingStatistics:
    """Counters describing one streaming evaluation run."""

    events: int = 0
    buffered_elements: int = 0
    matches: int = 0
    buffered_subtrees: int = 0


@dataclass
class _PartialMatch:
    """A prefix of the spine matched by the current ancestor chain."""

    next_step: int
    depth: int


class _StreamingEvaluator(SaxHandler):
    """SAX handler implementing the buffered spine-matching strategy."""

    def __init__(self, path: LocationPath) -> None:
        self.path = path
        self.steps = list(path.steps)
        if not self.steps:
            raise QueryError("streaming evaluation requires at least one step")
        for step in self.steps:
            if step.test.kind is NodeTestKind.TEXT:
                raise QueryError("text() steps on the spine are not supported in streaming mode")
        # Buffer from the deepest step that needs look-ahead: the last step
        # with predicates, or the final (result) step if none has predicates.
        self.buffer_step = len(self.steps) - 1
        for index, step in enumerate(self.steps):
            if step.predicates:
                self.buffer_step = min(self.buffer_step, index)
                break
        self.results: list[ResultItem] = []
        self.stats = StreamingStatistics()
        self._depth = 0
        self._partials: list[_PartialMatch] = [_PartialMatch(next_step=0, depth=0)]
        self._buffer_stack: list[XmlElement] = []
        self._buffer_root: XmlElement | None = None
        self._buffer_depth = 0

    # ------------------------------------------------------------------
    # SAX callbacks
    # ------------------------------------------------------------------
    def start_element(self, name: str, attributes: dict[str, str]) -> None:
        self.stats.events += 1
        self._depth += 1
        if self._buffer_root is not None:
            element = XmlElement(name=name, attributes=dict(attributes))
            self._buffer_stack[-1].append(element)
            self._buffer_stack.append(element)
            self.stats.buffered_elements += 1
            return
        # Extend partial matches whose next step accepts this element.
        new_partials: list[_PartialMatch] = []
        starts_buffer = False
        for partial in self._partials:
            if partial.next_step >= len(self.steps):
                continue
            step = self.steps[partial.next_step]
            if not self._step_accepts(step, partial, name):
                continue
            if partial.next_step == self.buffer_step:
                starts_buffer = True
            else:
                new_partials.append(
                    _PartialMatch(next_step=partial.next_step + 1, depth=self._depth)
                )
        if starts_buffer:
            self._buffer_root = XmlElement(name=name, attributes=dict(attributes))
            self._buffer_stack = [self._buffer_root]
            self._buffer_depth = self._depth
            self.stats.buffered_subtrees += 1
            self.stats.buffered_elements += 1
            return
        self._partials.extend(new_partials)

    def characters(self, content: str) -> None:
        self.stats.events += 1
        if self._buffer_root is not None and self._buffer_stack:
            self._buffer_stack[-1].add_text(content)

    def end_element(self, name: str) -> None:
        self.stats.events += 1
        if self._buffer_root is not None:
            if self._depth == self._buffer_depth:
                self._finish_buffer()
            else:
                self._buffer_stack.pop()
            self._depth -= 1
            return
        self._partials = [
            partial for partial in self._partials if partial.depth < self._depth
        ] or [_PartialMatch(next_step=0, depth=0)]
        self._depth -= 1

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _step_accepts(self, step: Step, partial: _PartialMatch, name: str) -> bool:
        if step.test.name not in ("*", name):
            return False
        if step.axis is XPathAxis.CHILD:
            return self._depth == partial.depth + 1
        return self._depth >= partial.depth + 1

    def _finish_buffer(self) -> None:
        assert self._buffer_root is not None
        buffered = self._buffer_root
        self._buffer_root = None
        self._buffer_stack = []
        # The buffered element must satisfy the buffer step's predicates ...
        buffer_step = self.steps[self.buffer_step]
        if not all(
            evaluate_predicate(predicate, buffered) for predicate in buffer_step.predicates
        ):
            return
        # ... and the remaining steps are evaluated inside the buffer.
        remaining = self.steps[self.buffer_step + 1:]
        if not remaining:
            self.results.append(buffered)
            self.stats.matches += 1
            return
        relative = LocationPath(steps=tuple(remaining), absolute=False)
        for item in evaluate_relative(relative, buffered):
            self.results.append(item)
            self.stats.matches += 1


class XPathStreamSession:
    """One incremental evaluation of a query over a chunked document.

    Text chunks go in through :meth:`feed` (they may split tags and keywords
    arbitrarily); :meth:`finish` returns the result items.  Memory use is
    bounded by the largest single token plus the buffered candidate
    subtrees, exactly as in the one-shot evaluation.
    """

    def __init__(self, path: LocationPath) -> None:
        self._evaluator = _StreamingEvaluator(path)
        self._sax = SaxSession(self._evaluator)

    def feed(self, chunk: str) -> None:
        """Process one chunk of document text."""
        self._sax.feed(chunk)

    def finish(self) -> list[ResultItem]:
        """Signal end of input and return the matched result items."""
        self._sax.finish()
        return self._evaluator.results

    @property
    def results(self) -> list[ResultItem]:
        """The result items matched so far."""
        return self._evaluator.results

    @property
    def stats(self) -> StreamingStatistics:
        """Statistics of this evaluation."""
        return self._evaluator.stats


class StreamingXPathEngine:
    """Evaluate one XPath query over a document stream."""

    def __init__(self, query: str | LocationPath) -> None:
        self.path = parse_xpath(query) if isinstance(query, str) else query

    def evaluate(self, text: str) -> list[ResultItem]:
        """Evaluate the query over ``text`` and return the result items."""
        handler = _StreamingEvaluator(self.path)
        parse_with_handler(text, handler)
        self._last_stats = handler.stats
        return handler.results

    def session(self) -> XPathStreamSession:
        """Open an incremental evaluation session (``feed``/``finish``)."""
        return XPathStreamSession(self.path)

    def evaluate_chunks(self, chunks: Iterable[str]) -> list[ResultItem]:
        """Evaluate the query over a chunked document without joining it."""
        session = self.session()
        for chunk in chunks:
            session.feed(chunk)
        results = session.finish()
        self._last_stats = session.stats
        return results

    @property
    def last_stats(self) -> StreamingStatistics:
        """Statistics of the most recent evaluation."""
        return getattr(self, "_last_stats", StreamingStatistics())


def evaluate_streaming(query: str, text: str) -> list[ResultItem]:
    """One-shot helper for streaming evaluation."""
    return StreamingXPathEngine(query).evaluate(text)
