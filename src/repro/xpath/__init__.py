"""XPath substrate: parser, in-memory evaluator, streaming engine."""

from repro.xpath.ast import (
    AttributeRef,
    BooleanExpr,
    ComparisonExpr,
    ContainsExpr,
    ExistsExpr,
    LiteralExpr,
    LocationPath,
    NodeTest,
    NodeTestKind,
    PredicateExpr,
    Step,
    XPathAxis,
)
from repro.xpath.engine import (
    InMemoryQueryEngine,
    MemoryLimitExceeded,
    QueryRunResult,
    estimate_tree_memory,
)
from repro.xpath.evaluator import (
    ResultItem,
    evaluate_xpath,
    serialize_results,
    string_value,
)
from repro.xpath.parser import parse_xpath
from repro.xpath.streaming import (
    StreamingStatistics,
    StreamingXPathEngine,
    evaluate_streaming,
)

__all__ = [
    "AttributeRef",
    "BooleanExpr",
    "ComparisonExpr",
    "ContainsExpr",
    "ExistsExpr",
    "InMemoryQueryEngine",
    "LiteralExpr",
    "LocationPath",
    "MemoryLimitExceeded",
    "NodeTest",
    "NodeTestKind",
    "PredicateExpr",
    "QueryRunResult",
    "ResultItem",
    "Step",
    "StreamingStatistics",
    "StreamingXPathEngine",
    "XPathAxis",
    "estimate_tree_memory",
    "evaluate_streaming",
    "evaluate_xpath",
    "parse_xpath",
    "serialize_results",
    "string_value",
]
