"""In-memory evaluation of the XPath subset over :class:`XmlElement` trees.

The evaluator follows XPath 1.0 semantics for the supported constructs:
node-set results in document order, existential comparison semantics
(``path = "x"`` is true when *some* selected node's string value equals
``x``), and ``contains()`` over string values.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Union

from repro.errors import QueryError
from repro.xml.tree import XmlDocument, XmlElement, XmlText
from repro.xpath.ast import (
    AttributeRef,
    BooleanExpr,
    ComparisonExpr,
    ContainsExpr,
    ExistsExpr,
    LiteralExpr,
    LocationPath,
    NodeTestKind,
    PredicateExpr,
    Step,
    XPathAxis,
)
from repro.xpath.parser import parse_xpath

#: Items an XPath evaluation can produce: element nodes or text strings.
ResultItem = Union[XmlElement, str]


def evaluate_xpath(
    query: str | LocationPath, document: XmlDocument | XmlElement
) -> list[ResultItem]:
    """Evaluate ``query`` against ``document`` and return the result list."""
    path = parse_xpath(query) if isinstance(query, str) else query
    root = document.root if isinstance(document, XmlDocument) else document
    return _evaluate_absolute(path, root)


def _evaluate_absolute(path: LocationPath, root: XmlElement) -> list[ResultItem]:
    if not path.steps:
        return [root]
    # The document node's only child element is the root element.
    context: list[ResultItem] = _apply_step(path.steps[0], [root], from_document_node=True)
    for step in path.steps[1:]:
        context = _apply_step(step, context, from_document_node=False)
    return context


def evaluate_relative(
    path: LocationPath, context: XmlElement
) -> list[ResultItem]:
    """Evaluate a relative path from ``context``."""
    items: list[ResultItem] = [context]
    for step in path.steps:
        items = _apply_relative_step(step, items)
    return items


# ----------------------------------------------------------------------
# Step application
# ----------------------------------------------------------------------
def _apply_step(
    step: Step, context: Sequence[ResultItem], from_document_node: bool
) -> list[ResultItem]:
    """Apply one step of an absolute path.

    The first step of an absolute path starts at the (virtual) document
    node: ``/a`` selects the root element when it is named ``a`` and ``//a``
    selects any element named ``a`` including the root itself.
    """
    results: list[ResultItem] = []
    for item in context:
        if not isinstance(item, XmlElement):
            continue
        if from_document_node:
            if step.axis is XPathAxis.CHILD:
                candidates: Iterable[XmlElement] = [item]
            else:
                candidates = item.iter_descendants(include_self=True)
            if step.test.kind is NodeTestKind.TEXT:
                raise QueryError("text() cannot be the first step of an absolute path")
            for candidate in candidates:
                if step.test.name in ("*", candidate.name):
                    results.append(candidate)
        else:
            results.extend(_select(step, item))
    return _apply_predicates(step, results)


def _apply_relative_step(step: Step, context: Sequence[ResultItem]) -> list[ResultItem]:
    results: list[ResultItem] = []
    for item in context:
        if isinstance(item, XmlElement):
            results.extend(_select(step, item))
    return _apply_predicates(step, results)


def _select(step: Step, element: XmlElement) -> list[ResultItem]:
    if step.test.kind is NodeTestKind.TEXT:
        if step.axis is XPathAxis.CHILD:
            return [child.content for child in element.children if isinstance(child, XmlText)]
        texts: list[ResultItem] = []
        for descendant in element.iter_descendants(include_self=True):
            texts.extend(
                child.content for child in descendant.children if isinstance(child, XmlText)
            )
        return texts
    if step.axis is XPathAxis.CHILD:
        return list(element.find_children(step.test.name))
    return list(element.find_descendants(step.test.name))


def _apply_predicates(step: Step, items: list[ResultItem]) -> list[ResultItem]:
    if not step.predicates:
        return items
    filtered: list[ResultItem] = []
    for item in items:
        if not isinstance(item, XmlElement):
            # Predicates on text nodes are not part of the supported subset.
            continue
        if all(evaluate_predicate(predicate, item) for predicate in step.predicates):
            filtered.append(item)
    return filtered


# ----------------------------------------------------------------------
# Predicates
# ----------------------------------------------------------------------
def evaluate_predicate(expression: PredicateExpr, context: XmlElement) -> bool:
    """Evaluate a predicate expression with ``context`` as the context node."""
    if isinstance(expression, BooleanExpr):
        if expression.operator == "and":
            return all(evaluate_predicate(operand, context) for operand in expression.operands)
        return any(evaluate_predicate(operand, context) for operand in expression.operands)
    if isinstance(expression, ComparisonExpr):
        values = _string_values(expression.left, context)
        return expression.right.value in values
    if isinstance(expression, ContainsExpr):
        values = (
            _string_values(expression.haystack, context)
            if expression.haystack is not None
            else [context.text_content()]
        )
        return any(expression.needle.value in value for value in values)
    if isinstance(expression, ExistsExpr):
        return bool(evaluate_relative(expression.path, context))
    if isinstance(expression, AttributeRef):
        return expression.name in context.attributes
    raise QueryError(f"unsupported predicate expression: {expression!r}")


def _string_values(
    target: LocationPath | AttributeRef, context: XmlElement
) -> list[str]:
    if isinstance(target, AttributeRef):
        value = context.attribute(target.name)
        return [value] if value is not None else []
    items = evaluate_relative(target, context)
    values: list[str] = []
    for item in items:
        if isinstance(item, XmlElement):
            values.append(item.text_content())
        else:
            values.append(item)
    return values


def string_value(item: ResultItem) -> str:
    """The XPath string value of a result item."""
    if isinstance(item, XmlElement):
        return item.text_content()
    return item


def serialize_results(items: Sequence[ResultItem]) -> str:
    """Serialize a result list the way the query engines report it."""
    pieces: list[str] = []
    for item in items:
        if isinstance(item, XmlElement):
            pieces.append(item.serialize())
        else:
            pieces.append(item)
    return "\n".join(pieces)
