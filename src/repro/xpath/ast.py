"""Abstract syntax for the XPath subset used by the query engines.

The subset covers what the paper's experiments need (queries M1-M5 of
Table II and the XMark query workload): absolute location paths with child
and descendant axes, name and ``text()`` tests, attribute references, and
predicates built from existence tests, equality comparisons, ``contains()``
and boolean ``and`` / ``or``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Union


class XPathAxis(enum.Enum):
    """Navigation axis of one step."""

    CHILD = "child"
    DESCENDANT = "descendant"


class NodeTestKind(enum.Enum):
    """Kind of node test in a step."""

    NAME = "name"      # element name or "*"
    TEXT = "text()"    # text() node test


@dataclass(frozen=True)
class NodeTest:
    """The node test of a step: an element name, ``*`` or ``text()``."""

    kind: NodeTestKind
    name: str = "*"

    def __str__(self) -> str:
        if self.kind is NodeTestKind.TEXT:
            return "text()"
        return self.name


@dataclass(frozen=True)
class LiteralExpr:
    """A string literal inside a predicate."""

    value: str

    def __str__(self) -> str:
        return f'"{self.value}"'


@dataclass(frozen=True)
class AttributeRef:
    """An attribute reference ``@name``."""

    name: str

    def __str__(self) -> str:
        return f"@{self.name}"


@dataclass(frozen=True)
class Step:
    """One location step: axis, node test, and predicates."""

    axis: XPathAxis
    test: NodeTest
    predicates: tuple["PredicateExpr", ...] = field(default_factory=tuple)

    def __str__(self) -> str:
        prefix = "//" if self.axis is XPathAxis.DESCENDANT else "/"
        predicate_text = "".join(f"[{predicate}]" for predicate in self.predicates)
        return f"{prefix}{self.test}{predicate_text}"


@dataclass(frozen=True)
class LocationPath:
    """A location path; ``absolute`` paths start at the document root."""

    steps: tuple[Step, ...]
    absolute: bool = True

    def __str__(self) -> str:
        text = "".join(str(step) for step in self.steps)
        if self.absolute:
            return text or "/"
        return text.lstrip("/") if text.startswith("/") and not text.startswith("//") else text

    @property
    def has_predicates(self) -> bool:
        """True if any step carries a predicate."""
        return any(step.predicates for step in self.steps)

    def spine_names(self) -> list[str]:
        """The element-name tests along the path (ignoring text() steps)."""
        return [
            step.test.name
            for step in self.steps
            if step.test.kind is NodeTestKind.NAME
        ]


@dataclass(frozen=True)
class ComparisonExpr:
    """An equality comparison ``left = "literal"``."""

    left: Union["LocationPath", AttributeRef]
    right: LiteralExpr

    def __str__(self) -> str:
        return f"{self.left}={self.right}"


@dataclass(frozen=True)
class ContainsExpr:
    """A ``contains(haystack, "needle")`` call.

    ``haystack`` may be a relative location path (possibly ending in
    ``text()``), an attribute reference, or None meaning the context node's
    own string value (``contains(text(), ...)`` is normalised to a relative
    path containing a single text() step).
    """

    haystack: Union["LocationPath", AttributeRef, None]
    needle: LiteralExpr

    def __str__(self) -> str:
        target = str(self.haystack) if self.haystack is not None else "."
        return f"contains({target},{self.needle})"


@dataclass(frozen=True)
class BooleanExpr:
    """A conjunction or disjunction of predicate expressions."""

    operator: str  # "and" | "or"
    operands: tuple["PredicateExpr", ...]

    def __str__(self) -> str:
        return f" {self.operator} ".join(str(operand) for operand in self.operands)


@dataclass(frozen=True)
class ExistsExpr:
    """A bare relative path used as an existence test."""

    path: "LocationPath"

    def __str__(self) -> str:
        return str(self.path)


PredicateExpr = Union[ComparisonExpr, ContainsExpr, BooleanExpr, ExistsExpr, AttributeRef]
