"""Recursive-descent parser for the XPath subset.

See :mod:`repro.xpath.ast` for the supported grammar.  Errors raise
:class:`repro.errors.XPathSyntaxError` with the offending offset.
"""

from __future__ import annotations

import re

from repro.errors import XPathSyntaxError
from repro.xpath.ast import (
    AttributeRef,
    BooleanExpr,
    ComparisonExpr,
    ContainsExpr,
    ExistsExpr,
    LiteralExpr,
    LocationPath,
    NodeTest,
    NodeTestKind,
    PredicateExpr,
    Step,
    XPathAxis,
)

_NAME_RE = re.compile(r"[A-Za-z_:][\w:.\-]*")


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.position = 0

    # ------------------------------------------------------------------
    # Utilities
    # ------------------------------------------------------------------
    def error(self, message: str) -> XPathSyntaxError:
        return XPathSyntaxError(f"{message} at offset {self.position} in {self.text!r}")

    def skip_whitespace(self) -> None:
        while self.position < len(self.text) and self.text[self.position].isspace():
            self.position += 1

    def peek(self, offset: int = 0) -> str:
        index = self.position + offset
        return self.text[index] if index < len(self.text) else ""

    def startswith(self, prefix: str) -> bool:
        return self.text.startswith(prefix, self.position)

    def consume(self, prefix: str) -> None:
        if not self.startswith(prefix):
            raise self.error(f"expected {prefix!r}")
        self.position += len(prefix)

    def at_end(self) -> bool:
        self.skip_whitespace()
        return self.position >= len(self.text)

    # ------------------------------------------------------------------
    # Location paths
    # ------------------------------------------------------------------
    def parse_location_path(self, absolute: bool) -> LocationPath:
        steps: list[Step] = []
        first = True
        while True:
            self.skip_whitespace()
            if self.startswith("//"):
                axis = XPathAxis.DESCENDANT
                self.consume("//")
            elif self.startswith("/"):
                axis = XPathAxis.CHILD
                self.consume("/")
            elif first and not absolute:
                axis = XPathAxis.CHILD
            else:
                break
            steps.append(self.parse_step(axis))
            first = False
        if absolute and not steps:
            raise self.error("expected at least one location step")
        return LocationPath(steps=tuple(steps), absolute=absolute)

    def parse_step(self, axis: XPathAxis) -> Step:
        self.skip_whitespace()
        if self.startswith("text()"):
            self.consume("text()")
            test = NodeTest(kind=NodeTestKind.TEXT)
        elif self.peek() == "*":
            self.consume("*")
            test = NodeTest(kind=NodeTestKind.NAME, name="*")
        else:
            match = _NAME_RE.match(self.text, self.position)
            if not match:
                raise self.error("expected a name test, '*' or text()")
            self.position = match.end()
            test = NodeTest(kind=NodeTestKind.NAME, name=match.group(0))
        predicates: list[PredicateExpr] = []
        while True:
            self.skip_whitespace()
            if self.peek() != "[":
                break
            self.consume("[")
            predicates.append(self.parse_predicate())
            self.skip_whitespace()
            if self.peek() != "]":
                raise self.error("expected ']' to close predicate")
            self.consume("]")
        return Step(axis=axis, test=test, predicates=tuple(predicates))

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------
    def parse_predicate(self) -> PredicateExpr:
        left = self.parse_boolean_operand()
        self.skip_whitespace()
        operands = [left]
        operator: str | None = None
        while True:
            self.skip_whitespace()
            if self.startswith("or ") or self.startswith("or]"):
                word = "or"
            elif self.startswith("and ") or self.startswith("and]"):
                word = "and"
            else:
                break
            if operator is None:
                operator = word
            elif operator != word:
                raise self.error("mixing 'and' and 'or' without parentheses is not supported")
            self.position += len(word)
            operands.append(self.parse_boolean_operand())
        if operator is None:
            return left
        return BooleanExpr(operator=operator, operands=tuple(operands))

    def parse_boolean_operand(self) -> PredicateExpr:
        self.skip_whitespace()
        if self.startswith("contains("):
            return self.parse_contains()
        if self.peek() == "@":
            attribute = self.parse_attribute_ref()
            return self.maybe_comparison(attribute)
        path = self.parse_relative_path()
        return self.maybe_comparison(path)

    def parse_attribute_ref(self) -> AttributeRef:
        self.consume("@")
        match = _NAME_RE.match(self.text, self.position)
        if not match:
            raise self.error("expected attribute name after '@'")
        self.position = match.end()
        return AttributeRef(name=match.group(0))

    def parse_relative_path(self) -> LocationPath:
        self.skip_whitespace()
        steps: list[Step] = []
        # First step without a leading '/'.
        if self.startswith("//"):
            self.consume("//")
            steps.append(self.parse_step(XPathAxis.DESCENDANT))
        else:
            steps.append(self.parse_step(XPathAxis.CHILD))
        while True:
            if self.startswith("//"):
                self.consume("//")
                steps.append(self.parse_step(XPathAxis.DESCENDANT))
            elif self.startswith("/"):
                self.consume("/")
                steps.append(self.parse_step(XPathAxis.CHILD))
            else:
                break
        return LocationPath(steps=tuple(steps), absolute=False)

    def maybe_comparison(self, left: LocationPath | AttributeRef) -> PredicateExpr:
        self.skip_whitespace()
        if self.peek() == "=":
            self.consume("=")
            literal = self.parse_literal()
            return ComparisonExpr(left=left, right=literal)
        if isinstance(left, AttributeRef):
            return left
        return ExistsExpr(path=left)

    def parse_contains(self) -> ContainsExpr:
        self.consume("contains(")
        self.skip_whitespace()
        haystack: LocationPath | AttributeRef | None
        if self.peek() == "@":
            haystack = self.parse_attribute_ref()
        elif self.peek() in ("'", '"'):
            raise self.error("contains() with a literal haystack is not supported")
        else:
            haystack = self.parse_relative_path()
        self.skip_whitespace()
        if self.peek() != ",":
            raise self.error("expected ',' in contains()")
        self.consume(",")
        needle = self.parse_literal()
        self.skip_whitespace()
        if self.peek() != ")":
            raise self.error("expected ')' to close contains()")
        self.consume(")")
        return ContainsExpr(haystack=haystack, needle=needle)

    def parse_literal(self) -> LiteralExpr:
        self.skip_whitespace()
        quote = self.peek()
        # Accept typographic quotes that appear in the paper's query listing.
        opening = {'"': '"', "'": "'", "“": "”", "‘": "’"}
        if quote not in opening:
            raise self.error("expected a quoted string literal")
        closing = opening[quote]
        end = self.text.find(closing, self.position + 1)
        if end < 0:
            raise self.error("unterminated string literal")
        value = self.text[self.position + 1:end]
        self.position = end + 1
        return LiteralExpr(value=value)


def parse_xpath(text: str) -> LocationPath:
    """Parse an absolute XPath expression from the supported subset."""
    parser = _Parser(text.strip())
    parser.skip_whitespace()
    if not parser.startswith("/"):
        raise parser.error("only absolute paths are supported at the top level")
    path = parser.parse_location_path(absolute=True)
    if not parser.at_end():
        raise parser.error("unexpected trailing characters")
    return path
