"""In-memory query engine (the QizX / Saxon analogue of Figure 7(a)).

The engine loads the complete document into an in-memory tree and then
evaluates queries on it.  Like the main-memory XQuery processors in the
paper's experiments it has a configurable memory budget: when the estimated
size of the in-memory tree exceeds the budget, loading fails with
:class:`MemoryLimitExceeded`.  This reproduces, at laptop scale, the failure
cliff the paper observes ("Without projection, QizX ... fails for all queries
on the 1GB and 5GB documents").
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.errors import QueryError
from repro.xml.tree import XmlDocument, XmlElement, XmlText, parse_document
from repro.xpath.evaluator import ResultItem, evaluate_xpath, serialize_results
from repro.xpath.parser import parse_xpath

#: Rough per-node memory cost of the tree representation, in bytes.  The
#: constants approximate CPython object overheads and only need to be stable,
#: not exact: the engine uses them to enforce a *relative* memory budget.
ELEMENT_OVERHEAD_BYTES = 480
TEXT_OVERHEAD_BYTES = 120
CHARACTER_BYTES = 1


class MemoryLimitExceeded(QueryError):
    """Raised when loading a document would exceed the engine's memory budget."""

    def __init__(self, estimated: int, limit: int) -> None:
        super().__init__(
            f"estimated document memory {estimated} bytes exceeds the engine "
            f"limit of {limit} bytes"
        )
        self.estimated = estimated
        self.limit = limit


def estimate_tree_memory(document: XmlDocument) -> int:
    """Estimate the resident size of an in-memory document tree."""
    total = 0
    for node in document.root.iter_nodes():
        if isinstance(node, XmlElement):
            total += ELEMENT_OVERHEAD_BYTES
            for name, value in node.attributes.items():
                total += TEXT_OVERHEAD_BYTES + CHARACTER_BYTES * (len(name) + len(value))
        elif isinstance(node, XmlText):
            total += TEXT_OVERHEAD_BYTES + CHARACTER_BYTES * len(node.content)
    return total


@dataclass
class QueryRunResult:
    """Outcome of one engine run (load + evaluate)."""

    query: str
    result_count: int
    output: str
    load_seconds: float
    evaluate_seconds: float
    estimated_memory_bytes: int
    results: list[ResultItem] = field(default_factory=list, repr=False)

    @property
    def total_seconds(self) -> float:
        """Load plus evaluation time."""
        return self.load_seconds + self.evaluate_seconds


class InMemoryQueryEngine:
    """Load a document into memory and evaluate XPath-subset queries on it.

    Parameters
    ----------
    memory_limit_bytes:
        Maximum estimated tree size the engine will accept; None disables
        the check.
    """

    def __init__(self, memory_limit_bytes: int | None = None) -> None:
        self.memory_limit_bytes = memory_limit_bytes

    def load(self, text: str) -> tuple[XmlDocument, int]:
        """Parse ``text`` into a tree, enforcing the memory budget."""
        document = parse_document(text)
        estimated = estimate_tree_memory(document)
        if self.memory_limit_bytes is not None and estimated > self.memory_limit_bytes:
            raise MemoryLimitExceeded(estimated, self.memory_limit_bytes)
        return document, estimated

    def run(self, query: str, text: str) -> QueryRunResult:
        """Load ``text`` and evaluate ``query`` on it."""
        parse_xpath(query)  # validate the query before paying for the load
        load_start = time.perf_counter()
        document, estimated = self.load(text)
        load_seconds = time.perf_counter() - load_start
        evaluate_start = time.perf_counter()
        results = evaluate_xpath(query, document)
        evaluate_seconds = time.perf_counter() - evaluate_start
        return QueryRunResult(
            query=query,
            result_count=len(results),
            output=serialize_results(results),
            load_seconds=load_seconds,
            evaluate_seconds=evaluate_seconds,
            estimated_memory_bytes=estimated,
            results=results,
        )

    def run_many(self, queries: list[str], text: str) -> list[QueryRunResult]:
        """Load once and evaluate several queries against the same document."""
        for query in queries:
            parse_xpath(query)
        load_start = time.perf_counter()
        document, estimated = self.load(text)
        load_seconds = time.perf_counter() - load_start
        outcomes: list[QueryRunResult] = []
        for query in queries:
            evaluate_start = time.perf_counter()
            results = evaluate_xpath(query, document)
            evaluate_seconds = time.perf_counter() - evaluate_start
            outcomes.append(
                QueryRunResult(
                    query=query,
                    result_count=len(results),
                    output=serialize_results(results),
                    load_seconds=load_seconds,
                    evaluate_seconds=evaluate_seconds,
                    estimated_memory_bytes=estimated,
                    results=results,
                )
            )
        return outcomes
