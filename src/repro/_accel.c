/* Optional C accelerator for the SMP prefilter hot kernels.
 *
 * Two kernels move the per-token interpreter work of the reproduction below
 * the interpreter, with bit-identical results:
 *
 * ``find_token``
 *     The per-state token step of the Figure-4 runtime: frontier keyword
 *     search (memchr('<') + longest-first memcmp -- equivalent to the
 *     native backend's leftmost-longest ``bytes.find`` search because every
 *     frontier keyword is a tag keyword whose '<' appears only at offset
 *     0), false-match rejection, and the quote-aware end-of-tag scan.  The
 *     call either completes one token, suspends with an explicit resume
 *     vector (the C twin of the pure batched driver's ``_PH_*`` phases), or
 *     reports that no token exists before end of input.  Statistic deltas
 *     replay the native backend's span-approximated formulas exactly: they
 *     are computed from the absolute search origin at completion, so they
 *     are independent of how the input was chunked.
 *
 * ``scan_events``
 *     The union-automaton step of the multi-query shared scan: one sweep
 *     over the buffered window emitting flat ``(start, keyword_id,
 *     closing, flags)`` int64 events -- the occurrence stream
 *     ``pattern.finditer`` plus the extends-check and tag-end scan would
 *     produce, subscription-blind (the dynamic subscription and dispatch
 *     semantics stay in Python, where attach/detach live).
 *
 * The extension is strictly optional: ``repro.core.runtime`` and
 * ``repro.core.multi`` fall back to pure-Python batched loops with the same
 * output and statistics, which the property suite asserts.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>

#include <stdint.h>
#include <string.h>

#define CAPSULE_NAME "repro._accel.keywords"

/* Resume phases of the token kernel (the protocol between ``find_token``
 * and the Python driver; SEARCH is split so ``searches`` is counted once
 * per logical search, like the pure matchers do on ``pending=None``). */
enum {
    PH_SEARCH_NEW = 0,
    PH_SEARCH_RESUME = 1,
    PH_VERIFY = 2,
    PH_TAG = 3,
    PH_QUOTE = 4,
};

/* Statuses of a ``find_token`` call. */
enum {
    ST_TOKEN = 0,
    ST_SUSPEND = 1,
    ST_NO_TOKEN = 2,
};

/* Event flags of ``scan_events``. */
enum {
    EV_EXTENDS = 1,   /* tag name extends the keyword: a false match */
    EV_BACHELOR = 2,  /* the tag ends in '/>' */
    EV_UNDECIDED = 4, /* the extends verdict needs input beyond the window */
};

/* Tag-name bytes, replicated from repro.xml.escape.is_name_byte: ASCII
 * alphanumerics plus "_:-." plus every byte >= 0x80 (it belongs to a
 * multi-byte UTF-8 name character).  A static table, not locale isalnum. */
static unsigned char name_byte[256];

static void
init_name_byte(void)
{
    int i;
    for (i = 0; i < 256; i++) {
        name_byte[i] = (unsigned char)(
            (i >= '0' && i <= '9') || (i >= 'A' && i <= 'Z') ||
            (i >= 'a' && i <= 'z') || i == '_' || i == ':' ||
            i == '-' || i == '.' || i >= 0x80);
    }
}

/* A compiled keyword set (one automaton state's frontier vocabulary, or
 * the multi-query union vocabulary).  Keywords are stored longest first
 * (stable on the original order), so the first memcmp hit at a candidate
 * position is the longest keyword there -- the leftmost-longest rule. */
typedef struct {
    Py_ssize_t n;
    int is_single;          /* single-keyword statistics formulas */
    Py_ssize_t min_len;
    Py_ssize_t max_len;
    Py_ssize_t *lens;       /* [n], longest-first order */
    const char **kws;       /* [n], pointers into blob */
    Py_ssize_t *ids;        /* [n], original index of ordered keyword k */
    Py_ssize_t *len_by_id;  /* [n], keyword length by original index */
    char *blob;             /* owned copy of all keyword bytes */
} AccelKeywords;

static void
keywords_free(AccelKeywords *ak)
{
    if (ak == NULL)
        return;
    PyMem_Free(ak->lens);
    PyMem_Free(ak->kws);
    PyMem_Free(ak->ids);
    PyMem_Free(ak->len_by_id);
    PyMem_Free(ak->blob);
    PyMem_Free(ak);
}

static void
keywords_destructor(PyObject *capsule)
{
    keywords_free((AccelKeywords *)PyCapsule_GetPointer(capsule, CAPSULE_NAME));
}

static AccelKeywords *
keywords_from_capsule(PyObject *capsule)
{
    return (AccelKeywords *)PyCapsule_GetPointer(capsule, CAPSULE_NAME);
}

static PyObject *
accel_compile_keywords(PyObject *Py_UNUSED(self), PyObject *args)
{
    PyObject *seq_arg;
    int is_single;
    if (!PyArg_ParseTuple(args, "Op", &seq_arg, &is_single))
        return NULL;
    PyObject *seq = PySequence_Fast(seq_arg, "keywords must be a sequence");
    if (seq == NULL)
        return NULL;
    Py_ssize_t n = PySequence_Fast_GET_SIZE(seq);
    if (n <= 0) {
        Py_DECREF(seq);
        PyErr_SetString(PyExc_ValueError, "at least one keyword is required");
        return NULL;
    }
    Py_ssize_t total = 0;
    for (Py_ssize_t i = 0; i < n; i++) {
        PyObject *item = PySequence_Fast_GET_ITEM(seq, i);
        if (!PyBytes_Check(item) || PyBytes_GET_SIZE(item) == 0) {
            Py_DECREF(seq);
            PyErr_SetString(PyExc_TypeError,
                            "keywords must be non-empty bytes objects");
            return NULL;
        }
        total += PyBytes_GET_SIZE(item);
    }
    AccelKeywords *ak = PyMem_Calloc(1, sizeof(AccelKeywords));
    if (ak == NULL) {
        Py_DECREF(seq);
        return PyErr_NoMemory();
    }
    ak->n = n;
    ak->is_single = is_single;
    ak->lens = PyMem_Malloc((size_t)n * sizeof(Py_ssize_t));
    ak->kws = PyMem_Malloc((size_t)n * sizeof(const char *));
    ak->ids = PyMem_Malloc((size_t)n * sizeof(Py_ssize_t));
    ak->len_by_id = PyMem_Malloc((size_t)n * sizeof(Py_ssize_t));
    ak->blob = PyMem_Malloc((size_t)total);
    if (!ak->lens || !ak->kws || !ak->ids || !ak->len_by_id || !ak->blob) {
        keywords_free(ak);
        Py_DECREF(seq);
        return PyErr_NoMemory();
    }
    char *cursor = ak->blob;
    for (Py_ssize_t i = 0; i < n; i++) {
        PyObject *item = PySequence_Fast_GET_ITEM(seq, i);
        Py_ssize_t len = PyBytes_GET_SIZE(item);
        memcpy(cursor, PyBytes_AS_STRING(item), (size_t)len);
        ak->kws[i] = cursor;
        ak->lens[i] = len;
        ak->ids[i] = i;
        ak->len_by_id[i] = len;
        cursor += len;
    }
    Py_DECREF(seq);
    /* Stable insertion sort, longest first (n is a handful of keywords). */
    for (Py_ssize_t i = 1; i < n; i++) {
        Py_ssize_t len = ak->lens[i];
        const char *kw = ak->kws[i];
        Py_ssize_t id = ak->ids[i];
        Py_ssize_t j = i;
        while (j > 0 && ak->lens[j - 1] < len) {
            ak->lens[j] = ak->lens[j - 1];
            ak->kws[j] = ak->kws[j - 1];
            ak->ids[j] = ak->ids[j - 1];
            j--;
        }
        ak->lens[j] = len;
        ak->kws[j] = kw;
        ak->ids[j] = id;
    }
    ak->max_len = ak->lens[0];
    ak->min_len = ak->lens[n - 1];
    PyObject *capsule = PyCapsule_New(ak, CAPSULE_NAME, keywords_destructor);
    if (capsule == NULL)
        keywords_free(ak);
    return capsule;
}

/* Leftmost-longest occurrence at or after ``from`` (local offsets):
 * memchr('<') candidates probed longest-first.  Equivalent to the native
 * backend's per-keyword ``bytes.find`` search because every keyword starts
 * with '<' and contains it nowhere else, so occurrences start exactly at
 * '<' bytes.  ``*found_k`` receives the *ordered* keyword slot. */
static Py_ssize_t
leftmost(const AccelKeywords *ak, const unsigned char *text, Py_ssize_t from,
         Py_ssize_t limit, Py_ssize_t *found_k)
{
    Py_ssize_t p = from < 0 ? 0 : from;
    while (p < limit) {
        const unsigned char *hit =
            memchr(text + p, '<', (size_t)(limit - p));
        if (hit == NULL)
            break;
        Py_ssize_t c = hit - text;
        for (Py_ssize_t k = 0; k < ak->n; k++) {
            Py_ssize_t len = ak->lens[k];
            if (c + len <= limit &&
                memcmp(text + c, ak->kws[k], (size_t)len) == 0) {
                *found_k = k;
                return c;
            }
        }
        p = c + 1;
    }
    *found_k = -1;
    return -1;
}

/* Quote-aware scan for the closing '>' at or after ``cur`` (local offsets).
 * Returns the '>' offset, or -1 with ``*suspend_quote``/``*suspend_cursor``
 * describing how to resume: quote > 0 means the scan stopped inside a
 * quoted value opened by that byte; otherwise ``*suspend_cursor`` is the
 * safe re-scan position for the next window. */
static Py_ssize_t
scan_tag_end(const unsigned char *text, Py_ssize_t cur, Py_ssize_t limit,
             int *suspend_quote, Py_ssize_t *suspend_cursor)
{
    *suspend_quote = 0;
    for (;;) {
        const unsigned char *gt = cur < limit ?
            memchr(text + cur, '>', (size_t)(limit - cur)) : NULL;
        if (gt == NULL) {
            *suspend_cursor = cur;
            return -1;
        }
        Py_ssize_t lgt = gt - text;
        const unsigned char *dq =
            memchr(text + cur, '"', (size_t)(lgt - cur));
        const unsigned char *sq =
            memchr(text + cur, '\'', (size_t)(lgt - cur));
        if (dq == NULL && sq == NULL)
            return lgt;
        const unsigned char *q;
        int qch;
        if (dq != NULL && (sq == NULL || dq < sq)) {
            q = dq;
            qch = '"';
        }
        else {
            q = sq;
            qch = '\'';
        }
        Py_ssize_t qpos = q - text;
        const unsigned char *close = qpos + 1 < limit ?
            memchr(text + qpos + 1, qch, (size_t)(limit - qpos - 1)) : NULL;
        if (close == NULL) {
            *suspend_quote = qch;
            *suspend_cursor = limit;
            return -1;
        }
        cur = (close - text) + 1;
    }
}

static PyObject *
accel_find_token(PyObject *Py_UNUSED(self), PyObject *args)
{
    PyObject *capsule;
    Py_buffer buf;
    Py_ssize_t tbase, wend, begin, pos, kwi, aux;
    int eof, phase, quote;
    if (!PyArg_ParseTuple(args, "Oy*nnpinnnni", &capsule, &buf, &tbase, &wend,
                          &eof, &phase, &begin, &pos, &kwi, &aux, &quote))
        return NULL;
    AccelKeywords *ak = keywords_from_capsule(capsule);
    if (ak == NULL) {
        PyBuffer_Release(&buf);
        return NULL;
    }
    const unsigned char *text = (const unsigned char *)buf.buf;
    Py_ssize_t wlen = wend - tbase;
    if (wlen > buf.len)
        wlen = buf.len;
    if (wlen < 0)
        wlen = 0;

    Py_ssize_t d_searches = 0, d_comparisons = 0, d_shifts = 0;
    Py_ssize_t d_shift_total = 0, d_matches = 0, d_local_scan = 0;
    int status = ST_SUSPEND;
    int bachelor = 0;
    Py_ssize_t tag_end = -1;
    Py_ssize_t keep_from = wend;

    /* Decode the resume vector into local coordinates. */
    Py_ssize_t lpos = 0, lmatch = -1, lcursor = 0, lquote_from = 0;
    Py_ssize_t match_id = kwi;
    switch (phase) {
    case PH_SEARCH_NEW:
    case PH_SEARCH_RESUME:
        lpos = pos - tbase;
        break;
    case PH_VERIFY:
        lmatch = pos - tbase;
        break;
    case PH_TAG:
        lmatch = pos - tbase;
        lcursor = aux - tbase;
        break;
    case PH_QUOTE:
        lmatch = pos - tbase;
        lquote_from = aux - tbase;
        break;
    default:
        PyBuffer_Release(&buf);
        PyErr_Format(PyExc_ValueError, "unknown resume phase %d", phase);
        return NULL;
    }

    for (;;) {
        if (phase == PH_SEARCH_NEW || phase == PH_SEARCH_RESUME) {
            if (phase == PH_SEARCH_NEW) {
                d_searches += 1;
                phase = PH_SEARCH_RESUME;
            }
            Py_ssize_t found_k;
            Py_ssize_t found = leftmost(ak, text, lpos, wlen, &found_k);
            if (ak->is_single) {
                if (found < 0) {
                    if (eof) {
                        Py_ssize_t spanned = wend - begin;
                        if (spanned < 0)
                            spanned = 0;
                        d_comparisons += spanned / ak->lens[0];
                        status = ST_NO_TOKEN;
                        break;
                    }
                    Py_ssize_t resume = wend - ak->lens[0] + 1;
                    if (resume < begin)
                        resume = begin;
                    pos = resume;
                    keep_from = resume;
                    status = ST_SUSPEND;
                    break;
                }
                Py_ssize_t fabs = found + tbase;
                Py_ssize_t spanned = fabs - begin + ak->lens[0];
                Py_ssize_t comp = spanned / ak->lens[0];
                d_comparisons += comp < 1 ? 1 : comp;
                Py_ssize_t shift = fabs - begin;
                if (shift < 1)
                    shift = 1;
                d_shifts += 1;
                d_shift_total += shift;
                d_matches += 1;
                lmatch = found;
                match_id = ak->ids[found_k];
                phase = PH_VERIFY;
            }
            else if (found >= 0 && (eof || found + ak->max_len <= wlen)) {
                Py_ssize_t fabs = found + tbase;
                Py_ssize_t spanned = fabs - begin + 1; /* >= 1 */
                Py_ssize_t comp = spanned / ak->min_len;
                d_comparisons += comp < 1 ? 1 : comp;
                Py_ssize_t shift = fabs - begin;
                if (shift < 1)
                    shift = 1;
                d_shifts += 1;
                d_shift_total += shift;
                d_matches += 1;
                lmatch = found;
                match_id = ak->ids[found_k];
                phase = PH_VERIFY;
            }
            else if (eof) { /* found < 0 at end of input */
                Py_ssize_t spanned = wend - begin;
                if (spanned < 0)
                    spanned = 0;
                if (spanned) {
                    Py_ssize_t comp = spanned / ak->min_len;
                    d_comparisons += comp < 1 ? 1 : comp;
                }
                status = ST_NO_TOKEN;
                break;
            }
            else { /* none found, or a longer straddling keyword could win */
                Py_ssize_t resume = wend - ak->max_len + 1;
                if (resume < begin)
                    resume = begin;
                pos = resume;
                keep_from = resume;
                status = ST_SUSPEND;
                break;
            }
        }
        if (phase == PH_VERIFY) {
            Py_ssize_t after = lmatch + ak->len_by_id[match_id];
            if (after >= wlen && !eof) {
                pos = lmatch + tbase;
                keep_from = pos;
                status = ST_SUSPEND;
                break;
            }
            if (after < wlen && name_byte[text[after]]) {
                /* A longer tag name extends the keyword: false match. */
                d_local_scan += 1;
                d_searches += 1; /* the rejection starts a new search */
                begin = lmatch + tbase + 1;
                lpos = lmatch + 1;
                phase = PH_SEARCH_RESUME;
                continue;
            }
            lcursor = after;
            phase = PH_TAG;
        }
        if (phase == PH_QUOTE) {
            const unsigned char *close = lquote_from < wlen ?
                memchr(text + lquote_from, quote,
                       (size_t)(wlen - lquote_from)) : NULL;
            if (close == NULL) {
                if (eof) {
                    status = ST_NO_TOKEN;
                    break;
                }
                pos = lmatch + tbase;
                aux = wend; /* resume the quote skip from the new bytes */
                keep_from = pos;
                status = ST_SUSPEND;
                break;
            }
            lcursor = (close - text) + 1;
            phase = PH_TAG;
        }
        /* PH_TAG: quote-aware scan for the closing '>'. */
        {
            int suspend_quote;
            Py_ssize_t suspend_cursor;
            Py_ssize_t lend = scan_tag_end(text, lcursor, wlen,
                                           &suspend_quote, &suspend_cursor);
            if (lend < 0) {
                if (eof) {
                    status = ST_NO_TOKEN;
                    break;
                }
                pos = lmatch + tbase;
                keep_from = pos;
                if (suspend_quote) {
                    phase = PH_QUOTE;
                    quote = suspend_quote;
                    aux = wend;
                }
                else {
                    phase = PH_TAG;
                    aux = suspend_cursor + tbase;
                }
                status = ST_SUSPEND;
                break;
            }
            Py_ssize_t after = lmatch + ak->len_by_id[match_id];
            d_local_scan += lend - after + 1;
            bachelor = lend > after && text[lend - 1] == '/';
            pos = lmatch + tbase;
            tag_end = lend + tbase;
            keep_from = tag_end;
            status = ST_TOKEN;
            break;
        }
    }

    kwi = match_id;
    PyBuffer_Release(&buf);
    return Py_BuildValue("(iinnnninninnnnnn)", status, phase, begin, pos, kwi,
                         aux, quote, keep_from, tag_end, bachelor, d_searches,
                         d_comparisons, d_shifts, d_shift_total, d_matches,
                         d_local_scan);
}

static PyObject *
accel_scan_events(PyObject *Py_UNUSED(self), PyObject *args)
{
    PyObject *capsule;
    Py_buffer buf, out;
    Py_ssize_t tbase, scan_from;
    int eof;
    if (!PyArg_ParseTuple(args, "Oy*nnpw*", &capsule, &buf, &tbase,
                          &scan_from, &eof, &out))
        return NULL;
    AccelKeywords *ak = keywords_from_capsule(capsule);
    if (ak == NULL) {
        PyBuffer_Release(&buf);
        PyBuffer_Release(&out);
        return NULL;
    }
    if (out.len % sizeof(int64_t) != 0) {
        PyBuffer_Release(&buf);
        PyBuffer_Release(&out);
        PyErr_SetString(PyExc_ValueError,
                        "event buffer must hold int64 items");
        return NULL;
    }
    const unsigned char *text = (const unsigned char *)buf.buf;
    Py_ssize_t wlen = buf.len;
    int64_t *events = (int64_t *)out.buf;
    Py_ssize_t cap = (Py_ssize_t)(out.len / (4 * sizeof(int64_t)));
    /* No occurrence starting at or past the holdback is reported: a longer
     * union keyword could still straddle the window end there. */
    Py_ssize_t holdback = eof ? wlen : wlen - ak->max_len + 1;
    Py_ssize_t p = scan_from - tbase;
    if (p < 0)
        p = 0;
    Py_ssize_t count = 0;
    int done = 1;
    Py_ssize_t next_from = tbase + holdback;

    while (p < holdback) {
        const unsigned char *hit =
            memchr(text + p, '<', (size_t)(wlen - p));
        if (hit == NULL)
            break;
        Py_ssize_t c = hit - text;
        if (c >= holdback)
            break;
        Py_ssize_t found_k = -1;
        for (Py_ssize_t k = 0; k < ak->n; k++) {
            Py_ssize_t len = ak->lens[k];
            if (c + len <= wlen &&
                memcmp(text + c, ak->kws[k], (size_t)len) == 0) {
                found_k = k;
                break;
            }
        }
        if (found_k < 0) {
            p = c + 1;
            continue;
        }
        if (count >= cap) {
            done = 0;
            next_from = c + tbase;
            break;
        }
        Py_ssize_t after = c + ak->lens[found_k];
        int64_t flags = 0;
        Py_ssize_t closing = -1;
        if (after >= wlen && !eof) {
            flags = EV_UNDECIDED; /* the extends verdict needs more input */
        }
        else if (after < wlen && name_byte[text[after]]) {
            flags = EV_EXTENDS; /* false match for every subscriber */
        }
        else {
            int suspend_quote;
            Py_ssize_t suspend_cursor;
            closing = scan_tag_end(text, after, wlen,
                                   &suspend_quote, &suspend_cursor);
            if (closing > after && text[closing - 1] == '/')
                flags |= EV_BACHELOR;
        }
        events[4 * count] = (int64_t)(c + tbase);
        events[4 * count + 1] = (int64_t)ak->ids[found_k];
        events[4 * count + 2] = closing < 0 ? -1 : (int64_t)(closing + tbase);
        events[4 * count + 3] = flags;
        count += 1;
        p = after; /* the union scan is non-overlapping (finditer) */
    }

    PyBuffer_Release(&buf);
    PyBuffer_Release(&out);
    return Py_BuildValue("(nni)", count, next_from, done);
}

static PyMethodDef accel_methods[] = {
    {"compile_keywords", accel_compile_keywords, METH_VARARGS,
     "compile_keywords(keywords, is_single) -> capsule\n\n"
     "Compile a sequence of non-empty bytes keywords (tag keywords: '<'\n"
     "only at offset 0) into the C search structure used by find_token\n"
     "and scan_events.  Keyword ids are the original sequence indices."},
    {"find_token", accel_find_token, METH_VARARGS,
     "find_token(capsule, buf, tbase, wend, eof, phase, begin, pos, kwi,\n"
     "           aux, quote)\n"
     "-> (status, phase, begin, pos, kwi, aux, quote, keep_from, tag_end,\n"
     "    bachelor, d_searches, d_comparisons, d_shifts, d_shift_total,\n"
     "    d_matches, d_local_scan)\n\n"
     "One resumable token step: frontier search, false-match rejection\n"
     "and end-of-tag scan over one buffered window (absolute offsets;\n"
     "buf[0] sits at absolute offset tbase).  status 0 = token complete,\n"
     "1 = suspended (resume vector in phase..quote), 2 = no token before\n"
     "end of input.  The d_* fields are statistic deltas replaying the\n"
     "native backend formulas."},
    {"scan_events", accel_scan_events, METH_VARARGS,
     "scan_events(capsule, buf, tbase, scan_from, eof, out)\n"
     "-> (count, next_from, done)\n\n"
     "Union-scan one window into flat int64 events of 4 fields each:\n"
     "(start, keyword_id, closing_or_minus1, flags) with flags 1=extends\n"
     "(false match), 2=bachelor, 4=undecided.  Writes into the int64\n"
     "buffer 'out' (capacity len(out)//4 events); done=0 means the\n"
     "buffer filled and the scan should continue from next_from."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef accel_module = {
    PyModuleDef_HEAD_INIT,
    "repro._accel",
    "C hot-path kernels for the SMP prefilter (optional; see repro.accel).",
    -1,
    accel_methods,
};

PyMODINIT_FUNC
PyInit__accel(void)
{
    init_name_byte();
    return PyModule_Create(&accel_module);
}
