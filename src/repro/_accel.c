/* Optional C accelerator for the SMP prefilter hot kernels.
 *
 * Two kernels move the per-token interpreter work of the reproduction below
 * the interpreter, with bit-identical results:
 *
 * ``find_token``
 *     The per-state token step of the Figure-4 runtime: frontier keyword
 *     search (memchr('<') + longest-first memcmp -- equivalent to the
 *     native backend's leftmost-longest ``bytes.find`` search because every
 *     frontier keyword is a tag keyword whose '<' appears only at offset
 *     0), false-match rejection, and the quote-aware end-of-tag scan.  The
 *     call either completes one token, suspends with an explicit resume
 *     vector (the C twin of the pure batched driver's ``_PH_*`` phases), or
 *     reports that no token exists before end of input.  Statistic deltas
 *     replay the native backend's span-approximated formulas exactly: they
 *     are computed from the absolute search origin at completion, so they
 *     are independent of how the input was chunked.
 *
 * ``scan_events``
 *     The union-automaton step of the multi-query shared scan: one sweep
 *     over the buffered window emitting flat ``(start, keyword_id,
 *     closing, flags)`` int64 events -- the occurrence stream
 *     ``pattern.finditer`` plus the extends-check and tag-end scan would
 *     produce, subscription-blind (the dynamic subscription and dispatch
 *     semantics stay in Python, where attach/detach live).
 *
 * The extension is strictly optional: ``repro.core.runtime`` and
 * ``repro.core.multi`` fall back to pure-Python batched loops with the same
 * output and statistics, which the property suite asserts.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>

#include <stdint.h>
#include <string.h>

#define CAPSULE_NAME "repro._accel.keywords"

/* Resume phases of the token kernel (the protocol between ``find_token``
 * and the Python driver; SEARCH is split so ``searches`` is counted once
 * per logical search, like the pure matchers do on ``pending=None``). */
enum {
    PH_SEARCH_NEW = 0,
    PH_SEARCH_RESUME = 1,
    PH_VERIFY = 2,
    PH_TAG = 3,
    PH_QUOTE = 4,
};

/* Statuses of a ``find_token`` call. */
enum {
    ST_TOKEN = 0,
    ST_SUSPEND = 1,
    ST_NO_TOKEN = 2,
};

/* Event flags of ``scan_events``. */
enum {
    EV_EXTENDS = 1,   /* tag name extends the keyword: a false match */
    EV_BACHELOR = 2,  /* the tag ends in '/>' */
    EV_UNDECIDED = 4, /* the extends verdict needs input beyond the window */
};

/* Tag-name bytes, replicated from repro.xml.escape.is_name_byte: ASCII
 * alphanumerics plus "_:-." plus every byte >= 0x80 (it belongs to a
 * multi-byte UTF-8 name character).  A static table, not locale isalnum. */
static unsigned char name_byte[256];

static void
init_name_byte(void)
{
    int i;
    for (i = 0; i < 256; i++) {
        name_byte[i] = (unsigned char)(
            (i >= '0' && i <= '9') || (i >= 'A' && i <= 'Z') ||
            (i >= 'a' && i <= 'z') || i == '_' || i == ':' ||
            i == '-' || i == '.' || i >= 0x80);
    }
}

/* A compiled keyword set (one automaton state's frontier vocabulary, or
 * the multi-query union vocabulary).  Keywords are stored longest first
 * (stable on the original order), so the first memcmp hit at a candidate
 * position is the longest keyword there -- the leftmost-longest rule. */
typedef struct {
    Py_ssize_t n;
    int is_single;          /* single-keyword statistics formulas */
    Py_ssize_t min_len;
    Py_ssize_t max_len;
    Py_ssize_t *lens;       /* [n], longest-first order */
    const char **kws;       /* [n], pointers into blob */
    Py_ssize_t *ids;        /* [n], original index of ordered keyword k */
    Py_ssize_t *len_by_id;  /* [n], keyword length by original index */
    char *blob;             /* owned copy of all keyword bytes */
} AccelKeywords;

static void
keywords_free(AccelKeywords *ak)
{
    if (ak == NULL)
        return;
    PyMem_Free(ak->lens);
    PyMem_Free(ak->kws);
    PyMem_Free(ak->ids);
    PyMem_Free(ak->len_by_id);
    PyMem_Free(ak->blob);
    PyMem_Free(ak);
}

static void
keywords_destructor(PyObject *capsule)
{
    keywords_free((AccelKeywords *)PyCapsule_GetPointer(capsule, CAPSULE_NAME));
}

static AccelKeywords *
keywords_from_capsule(PyObject *capsule)
{
    return (AccelKeywords *)PyCapsule_GetPointer(capsule, CAPSULE_NAME);
}

static PyObject *
accel_compile_keywords(PyObject *Py_UNUSED(self), PyObject *args)
{
    PyObject *seq_arg;
    int is_single;
    if (!PyArg_ParseTuple(args, "Op", &seq_arg, &is_single))
        return NULL;
    PyObject *seq = PySequence_Fast(seq_arg, "keywords must be a sequence");
    if (seq == NULL)
        return NULL;
    Py_ssize_t n = PySequence_Fast_GET_SIZE(seq);
    if (n <= 0) {
        Py_DECREF(seq);
        PyErr_SetString(PyExc_ValueError, "at least one keyword is required");
        return NULL;
    }
    Py_ssize_t total = 0;
    for (Py_ssize_t i = 0; i < n; i++) {
        PyObject *item = PySequence_Fast_GET_ITEM(seq, i);
        if (!PyBytes_Check(item) || PyBytes_GET_SIZE(item) == 0) {
            Py_DECREF(seq);
            PyErr_SetString(PyExc_TypeError,
                            "keywords must be non-empty bytes objects");
            return NULL;
        }
        total += PyBytes_GET_SIZE(item);
    }
    AccelKeywords *ak = PyMem_Calloc(1, sizeof(AccelKeywords));
    if (ak == NULL) {
        Py_DECREF(seq);
        return PyErr_NoMemory();
    }
    ak->n = n;
    ak->is_single = is_single;
    ak->lens = PyMem_Malloc((size_t)n * sizeof(Py_ssize_t));
    ak->kws = PyMem_Malloc((size_t)n * sizeof(const char *));
    ak->ids = PyMem_Malloc((size_t)n * sizeof(Py_ssize_t));
    ak->len_by_id = PyMem_Malloc((size_t)n * sizeof(Py_ssize_t));
    ak->blob = PyMem_Malloc((size_t)total);
    if (!ak->lens || !ak->kws || !ak->ids || !ak->len_by_id || !ak->blob) {
        keywords_free(ak);
        Py_DECREF(seq);
        return PyErr_NoMemory();
    }
    char *cursor = ak->blob;
    for (Py_ssize_t i = 0; i < n; i++) {
        PyObject *item = PySequence_Fast_GET_ITEM(seq, i);
        Py_ssize_t len = PyBytes_GET_SIZE(item);
        memcpy(cursor, PyBytes_AS_STRING(item), (size_t)len);
        ak->kws[i] = cursor;
        ak->lens[i] = len;
        ak->ids[i] = i;
        ak->len_by_id[i] = len;
        cursor += len;
    }
    Py_DECREF(seq);
    /* Stable insertion sort, longest first (n is a handful of keywords). */
    for (Py_ssize_t i = 1; i < n; i++) {
        Py_ssize_t len = ak->lens[i];
        const char *kw = ak->kws[i];
        Py_ssize_t id = ak->ids[i];
        Py_ssize_t j = i;
        while (j > 0 && ak->lens[j - 1] < len) {
            ak->lens[j] = ak->lens[j - 1];
            ak->kws[j] = ak->kws[j - 1];
            ak->ids[j] = ak->ids[j - 1];
            j--;
        }
        ak->lens[j] = len;
        ak->kws[j] = kw;
        ak->ids[j] = id;
    }
    ak->max_len = ak->lens[0];
    ak->min_len = ak->lens[n - 1];
    PyObject *capsule = PyCapsule_New(ak, CAPSULE_NAME, keywords_destructor);
    if (capsule == NULL)
        keywords_free(ak);
    return capsule;
}

/* Leftmost-longest occurrence at or after ``from`` (local offsets):
 * memchr('<') candidates probed longest-first.  Equivalent to the native
 * backend's per-keyword ``bytes.find`` search because every keyword starts
 * with '<' and contains it nowhere else, so occurrences start exactly at
 * '<' bytes.  ``*found_k`` receives the *ordered* keyword slot. */
static Py_ssize_t
leftmost(const AccelKeywords *ak, const unsigned char *text, Py_ssize_t from,
         Py_ssize_t limit, Py_ssize_t *found_k)
{
    Py_ssize_t p = from < 0 ? 0 : from;
    while (p < limit) {
        const unsigned char *hit =
            memchr(text + p, '<', (size_t)(limit - p));
        if (hit == NULL)
            break;
        Py_ssize_t c = hit - text;
        for (Py_ssize_t k = 0; k < ak->n; k++) {
            Py_ssize_t len = ak->lens[k];
            if (c + len <= limit &&
                memcmp(text + c, ak->kws[k], (size_t)len) == 0) {
                *found_k = k;
                return c;
            }
        }
        p = c + 1;
    }
    *found_k = -1;
    return -1;
}

/* Quote-aware scan for the closing '>' at or after ``cur`` (local offsets).
 * Returns the '>' offset, or -1 with ``*suspend_quote``/``*suspend_cursor``
 * describing how to resume: quote > 0 means the scan stopped inside a
 * quoted value opened by that byte; otherwise ``*suspend_cursor`` is the
 * safe re-scan position for the next window. */
static Py_ssize_t
scan_tag_end(const unsigned char *text, Py_ssize_t cur, Py_ssize_t limit,
             int *suspend_quote, Py_ssize_t *suspend_cursor)
{
    *suspend_quote = 0;
    for (;;) {
        const unsigned char *gt = cur < limit ?
            memchr(text + cur, '>', (size_t)(limit - cur)) : NULL;
        if (gt == NULL) {
            *suspend_cursor = cur;
            return -1;
        }
        Py_ssize_t lgt = gt - text;
        const unsigned char *dq =
            memchr(text + cur, '"', (size_t)(lgt - cur));
        const unsigned char *sq =
            memchr(text + cur, '\'', (size_t)(lgt - cur));
        if (dq == NULL && sq == NULL)
            return lgt;
        const unsigned char *q;
        int qch;
        if (dq != NULL && (sq == NULL || dq < sq)) {
            q = dq;
            qch = '"';
        }
        else {
            q = sq;
            qch = '\'';
        }
        Py_ssize_t qpos = q - text;
        const unsigned char *close = qpos + 1 < limit ?
            memchr(text + qpos + 1, qch, (size_t)(limit - qpos - 1)) : NULL;
        if (close == NULL) {
            *suspend_quote = qch;
            *suspend_cursor = limit;
            return -1;
        }
        cur = (close - text) + 1;
    }
}

static PyObject *
accel_find_token(PyObject *Py_UNUSED(self), PyObject *args)
{
    PyObject *capsule;
    Py_buffer buf;
    Py_ssize_t tbase, wend, begin, pos, kwi, aux;
    int eof, phase, quote;
    if (!PyArg_ParseTuple(args, "Oy*nnpinnnni", &capsule, &buf, &tbase, &wend,
                          &eof, &phase, &begin, &pos, &kwi, &aux, &quote))
        return NULL;
    AccelKeywords *ak = keywords_from_capsule(capsule);
    if (ak == NULL) {
        PyBuffer_Release(&buf);
        return NULL;
    }
    const unsigned char *text = (const unsigned char *)buf.buf;
    Py_ssize_t wlen = wend - tbase;
    if (wlen > buf.len)
        wlen = buf.len;
    if (wlen < 0)
        wlen = 0;

    Py_ssize_t d_searches = 0, d_comparisons = 0, d_shifts = 0;
    Py_ssize_t d_shift_total = 0, d_matches = 0, d_local_scan = 0;
    int status = ST_SUSPEND;
    int bachelor = 0;
    Py_ssize_t tag_end = -1;
    Py_ssize_t keep_from = wend;

    /* Decode the resume vector into local coordinates. */
    Py_ssize_t lpos = 0, lmatch = -1, lcursor = 0, lquote_from = 0;
    Py_ssize_t match_id = kwi;
    switch (phase) {
    case PH_SEARCH_NEW:
    case PH_SEARCH_RESUME:
        lpos = pos - tbase;
        break;
    case PH_VERIFY:
        lmatch = pos - tbase;
        break;
    case PH_TAG:
        lmatch = pos - tbase;
        lcursor = aux - tbase;
        break;
    case PH_QUOTE:
        lmatch = pos - tbase;
        lquote_from = aux - tbase;
        break;
    default:
        PyBuffer_Release(&buf);
        PyErr_Format(PyExc_ValueError, "unknown resume phase %d", phase);
        return NULL;
    }

    for (;;) {
        if (phase == PH_SEARCH_NEW || phase == PH_SEARCH_RESUME) {
            if (phase == PH_SEARCH_NEW) {
                d_searches += 1;
                phase = PH_SEARCH_RESUME;
            }
            Py_ssize_t found_k;
            Py_ssize_t found = leftmost(ak, text, lpos, wlen, &found_k);
            if (ak->is_single) {
                if (found < 0) {
                    if (eof) {
                        Py_ssize_t spanned = wend - begin;
                        if (spanned < 0)
                            spanned = 0;
                        d_comparisons += spanned / ak->lens[0];
                        status = ST_NO_TOKEN;
                        break;
                    }
                    Py_ssize_t resume = wend - ak->lens[0] + 1;
                    if (resume < begin)
                        resume = begin;
                    pos = resume;
                    keep_from = resume;
                    status = ST_SUSPEND;
                    break;
                }
                Py_ssize_t fabs = found + tbase;
                Py_ssize_t spanned = fabs - begin + ak->lens[0];
                Py_ssize_t comp = spanned / ak->lens[0];
                d_comparisons += comp < 1 ? 1 : comp;
                Py_ssize_t shift = fabs - begin;
                if (shift < 1)
                    shift = 1;
                d_shifts += 1;
                d_shift_total += shift;
                d_matches += 1;
                lmatch = found;
                match_id = ak->ids[found_k];
                phase = PH_VERIFY;
            }
            else if (found >= 0 && (eof || found + ak->max_len <= wlen)) {
                Py_ssize_t fabs = found + tbase;
                Py_ssize_t spanned = fabs - begin + 1; /* >= 1 */
                Py_ssize_t comp = spanned / ak->min_len;
                d_comparisons += comp < 1 ? 1 : comp;
                Py_ssize_t shift = fabs - begin;
                if (shift < 1)
                    shift = 1;
                d_shifts += 1;
                d_shift_total += shift;
                d_matches += 1;
                lmatch = found;
                match_id = ak->ids[found_k];
                phase = PH_VERIFY;
            }
            else if (eof) { /* found < 0 at end of input */
                Py_ssize_t spanned = wend - begin;
                if (spanned < 0)
                    spanned = 0;
                if (spanned) {
                    Py_ssize_t comp = spanned / ak->min_len;
                    d_comparisons += comp < 1 ? 1 : comp;
                }
                status = ST_NO_TOKEN;
                break;
            }
            else { /* none found, or a longer straddling keyword could win */
                Py_ssize_t resume = wend - ak->max_len + 1;
                if (resume < begin)
                    resume = begin;
                pos = resume;
                keep_from = resume;
                status = ST_SUSPEND;
                break;
            }
        }
        if (phase == PH_VERIFY) {
            Py_ssize_t after = lmatch + ak->len_by_id[match_id];
            if (after >= wlen && !eof) {
                pos = lmatch + tbase;
                keep_from = pos;
                status = ST_SUSPEND;
                break;
            }
            if (after < wlen && name_byte[text[after]]) {
                /* A longer tag name extends the keyword: false match. */
                d_local_scan += 1;
                d_searches += 1; /* the rejection starts a new search */
                begin = lmatch + tbase + 1;
                lpos = lmatch + 1;
                phase = PH_SEARCH_RESUME;
                continue;
            }
            lcursor = after;
            phase = PH_TAG;
        }
        if (phase == PH_QUOTE) {
            const unsigned char *close = lquote_from < wlen ?
                memchr(text + lquote_from, quote,
                       (size_t)(wlen - lquote_from)) : NULL;
            if (close == NULL) {
                if (eof) {
                    status = ST_NO_TOKEN;
                    break;
                }
                pos = lmatch + tbase;
                aux = wend; /* resume the quote skip from the new bytes */
                keep_from = pos;
                status = ST_SUSPEND;
                break;
            }
            lcursor = (close - text) + 1;
            phase = PH_TAG;
        }
        /* PH_TAG: quote-aware scan for the closing '>'. */
        {
            int suspend_quote;
            Py_ssize_t suspend_cursor;
            Py_ssize_t lend = scan_tag_end(text, lcursor, wlen,
                                           &suspend_quote, &suspend_cursor);
            if (lend < 0) {
                if (eof) {
                    status = ST_NO_TOKEN;
                    break;
                }
                pos = lmatch + tbase;
                keep_from = pos;
                if (suspend_quote) {
                    phase = PH_QUOTE;
                    quote = suspend_quote;
                    aux = wend;
                }
                else {
                    phase = PH_TAG;
                    aux = suspend_cursor + tbase;
                }
                status = ST_SUSPEND;
                break;
            }
            Py_ssize_t after = lmatch + ak->len_by_id[match_id];
            d_local_scan += lend - after + 1;
            bachelor = lend > after && text[lend - 1] == '/';
            pos = lmatch + tbase;
            tag_end = lend + tbase;
            keep_from = tag_end;
            status = ST_TOKEN;
            break;
        }
    }

    kwi = match_id;
    PyBuffer_Release(&buf);
    return Py_BuildValue("(iinnnninninnnnnn)", status, phase, begin, pos, kwi,
                         aux, quote, keep_from, tag_end, bachelor, d_searches,
                         d_comparisons, d_shifts, d_shift_total, d_matches,
                         d_local_scan);
}

static PyObject *
accel_scan_events(PyObject *Py_UNUSED(self), PyObject *args)
{
    PyObject *capsule;
    Py_buffer buf, out;
    Py_ssize_t tbase, scan_from;
    int eof;
    if (!PyArg_ParseTuple(args, "Oy*nnpw*", &capsule, &buf, &tbase,
                          &scan_from, &eof, &out))
        return NULL;
    AccelKeywords *ak = keywords_from_capsule(capsule);
    if (ak == NULL) {
        PyBuffer_Release(&buf);
        PyBuffer_Release(&out);
        return NULL;
    }
    if (out.len % sizeof(int64_t) != 0) {
        PyBuffer_Release(&buf);
        PyBuffer_Release(&out);
        PyErr_SetString(PyExc_ValueError,
                        "event buffer must hold int64 items");
        return NULL;
    }
    const unsigned char *text = (const unsigned char *)buf.buf;
    Py_ssize_t wlen = buf.len;
    int64_t *events = (int64_t *)out.buf;
    Py_ssize_t cap = (Py_ssize_t)(out.len / (4 * sizeof(int64_t)));
    /* No occurrence starting at or past the holdback is reported: a longer
     * union keyword could still straddle the window end there. */
    Py_ssize_t holdback = eof ? wlen : wlen - ak->max_len + 1;
    Py_ssize_t p = scan_from - tbase;
    if (p < 0)
        p = 0;
    Py_ssize_t count = 0;
    int done = 1;
    Py_ssize_t next_from = tbase + holdback;

    while (p < holdback) {
        const unsigned char *hit =
            memchr(text + p, '<', (size_t)(wlen - p));
        if (hit == NULL)
            break;
        Py_ssize_t c = hit - text;
        if (c >= holdback)
            break;
        Py_ssize_t found_k = -1;
        for (Py_ssize_t k = 0; k < ak->n; k++) {
            Py_ssize_t len = ak->lens[k];
            if (c + len <= wlen &&
                memcmp(text + c, ak->kws[k], (size_t)len) == 0) {
                found_k = k;
                break;
            }
        }
        if (found_k < 0) {
            p = c + 1;
            continue;
        }
        if (count >= cap) {
            done = 0;
            next_from = c + tbase;
            break;
        }
        Py_ssize_t after = c + ak->lens[found_k];
        int64_t flags = 0;
        Py_ssize_t closing = -1;
        if (after >= wlen && !eof) {
            flags = EV_UNDECIDED; /* the extends verdict needs more input */
        }
        else if (after < wlen && name_byte[text[after]]) {
            flags = EV_EXTENDS; /* false match for every subscriber */
        }
        else {
            int suspend_quote;
            Py_ssize_t suspend_cursor;
            closing = scan_tag_end(text, after, wlen,
                                   &suspend_quote, &suspend_cursor);
            if (closing > after && text[closing - 1] == '/')
                flags |= EV_BACHELOR;
        }
        events[4 * count] = (int64_t)(c + tbase);
        events[4 * count + 1] = (int64_t)ak->ids[found_k];
        events[4 * count + 2] = closing < 0 ? -1 : (int64_t)(closing + tbase);
        events[4 * count + 3] = flags;
        count += 1;
        p = after; /* the union scan is non-overlapping (finditer) */
    }

    PyBuffer_Release(&buf);
    PyBuffer_Release(&out);
    return Py_BuildValue("(nni)", count, next_from, done);
}

/* ====================================================================
 * Native DrivenStream stepping (the multi-query shared-scan hot loop)
 * ==================================================================== */

#define STEP_CAPSULE_NAME "repro._accel.step"

/* Per-stream state block layout (int64 slots, stride SS_STRIDE).  The
 * Python side exports a DrivenStream into one block before a step_events
 * call and imports it (state fields plus the d_* statistic deltas) after. */
enum {
    SS_ACTIVE = 0,          /* 1 while the stream takes part in dispatch */
    SS_ROW = 1,             /* current automaton state, as a table row */
    SS_SEARCH_FROM = 2,     /* absolute search origin (cursor) */
    SS_PENDING_JUMP = 3,    /* table-J jump not yet resolved in this state */
    SS_LAST_POS = 4,        /* last false-match position (dedupe), or -1 */
    SS_COPY_ACTIVE = 5,     /* inside an open copy region */
    SS_COPY_TAG = 6,        /* interned tag id of the open region */
    SS_COPY_EMITTED = 7,    /* absolute offset the region is emitted up to */
    SS_D_LOCAL_SCAN = 8,    /* local_scan_chars delta */
    SS_D_TOKENS_MATCHED = 9,
    SS_D_TOKENS_COPIED = 10,
    SS_D_REGIONS = 11,      /* regions_copied delta */
    SS_D_JUMPS = 12,        /* initial_jumps delta */
    SS_D_JUMP_CHARS = 13,   /* initial_jump_chars delta */
    SS_DONE = 14,           /* automaton reached a final state */
    SS_STRIDE = 16,
};

/* Statuses of a ``step_events`` call. */
enum {
    STEP_DONE = 0,        /* window fully dispatched up to the holdback */
    STEP_SUSPEND = 1,     /* a decision needs input beyond the window */
    STEP_UNCLOSED_EOF = 2, /* a subscribed tag never closes before EOF */
    STEP_BAIL = 3,        /* a transition error: replay the event in Python */
    STEP_SPANS_FULL = 4,  /* span buffer full: apply spans, call again */
};

/* Action codes (repro.core.tables.Action, flattened by compile order). */
enum {
    ACT_NOP = 0,
    ACT_COPY_TAG = 1,
    ACT_COPY_ON = 2,
    ACT_COPY_OFF = 3,
};

/* Per-cell flags of the (state row, union keyword id) decision table. */
enum {
    CF_OPEN = 1,          /* the symbol opens a tag: the bachelor path applies */
    CF_BACHELOR_COPY = 2, /* a bachelor tag here is emitted (wants copy) */
};

/* One stream's Figure-4 decision logic flattened over the *union* keyword
 * id space: every per-event decision (vocabulary membership, transition,
 * action, bachelor open+close pair) is one row*K + kid lookup. */
typedef struct {
    Py_ssize_t S;       /* state rows */
    Py_ssize_t K;       /* union keyword count (must match the scan capsule) */
    int64_t *next;      /* [S*K] next row, or -1 when not in the vocabulary */
    int64_t *action;    /* [S*K] action code of the target state */
    int64_t *tagid;     /* [S*K] interned tag-name id of the symbol */
    int64_t *cellflags; /* [S*K] CF_* bits */
    int64_t *b_next;    /* [S*K] row after the bachelor close pair, or -2
                         * when the close transition is missing (bail) */
    int64_t *jump;      /* [S] table-J jump on entering the row */
    int64_t *is_final;  /* [S] 1 when the row is accepting */
} StepTables;

static void
step_tables_free(StepTables *t)
{
    if (t == NULL)
        return;
    PyMem_Free(t->next);
    PyMem_Free(t->action);
    PyMem_Free(t->tagid);
    PyMem_Free(t->cellflags);
    PyMem_Free(t->b_next);
    PyMem_Free(t->jump);
    PyMem_Free(t->is_final);
    PyMem_Free(t);
}

static void
step_destructor(PyObject *capsule)
{
    step_tables_free(
        (StepTables *)PyCapsule_GetPointer(capsule, STEP_CAPSULE_NAME));
}

static int64_t *
copy_i64(const Py_buffer *src, Py_ssize_t items, const char *what)
{
    if (src->len != items * (Py_ssize_t)sizeof(int64_t)) {
        PyErr_Format(PyExc_ValueError,
                     "%s table must hold exactly %zd int64 items", what, items);
        return NULL;
    }
    int64_t *out = PyMem_Malloc((size_t)src->len);
    if (out == NULL) {
        PyErr_NoMemory();
        return NULL;
    }
    memcpy(out, src->buf, (size_t)src->len);
    return out;
}

static PyObject *
accel_compile_step(PyObject *Py_UNUSED(self), PyObject *args)
{
    Py_buffer next, action, tagid, cellflags, b_next, jump, is_final;
    Py_ssize_t S, K;
    if (!PyArg_ParseTuple(args, "y*y*y*y*y*y*y*nn", &next, &action, &tagid,
                          &cellflags, &b_next, &jump, &is_final, &S, &K))
        return NULL;
    PyObject *capsule = NULL;
    StepTables *t = NULL;
    if (S <= 0 || K <= 0) {
        PyErr_SetString(PyExc_ValueError,
                        "step tables need at least one state and one keyword");
        goto done;
    }
    t = PyMem_Calloc(1, sizeof(StepTables));
    if (t == NULL) {
        PyErr_NoMemory();
        goto done;
    }
    t->S = S;
    t->K = K;
    if ((t->next = copy_i64(&next, S * K, "next")) == NULL ||
        (t->action = copy_i64(&action, S * K, "action")) == NULL ||
        (t->tagid = copy_i64(&tagid, S * K, "tagid")) == NULL ||
        (t->cellflags = copy_i64(&cellflags, S * K, "cellflags")) == NULL ||
        (t->b_next = copy_i64(&b_next, S * K, "b_next")) == NULL ||
        (t->jump = copy_i64(&jump, S, "jump")) == NULL ||
        (t->is_final = copy_i64(&is_final, S, "final")) == NULL)
        goto done;
    capsule = PyCapsule_New(t, STEP_CAPSULE_NAME, step_destructor);
    if (capsule != NULL)
        t = NULL; /* owned by the capsule now */
done:
    if (capsule == NULL)
        step_tables_free(t);
    PyBuffer_Release(&next);
    PyBuffer_Release(&action);
    PyBuffer_Release(&tagid);
    PyBuffer_Release(&cellflags);
    PyBuffer_Release(&b_next);
    PyBuffer_Release(&jump);
    PyBuffer_Release(&is_final);
    return capsule;
}

/* DrivenStream.push_false_match: one rejected occurrence of keyword
 * ``kid`` at ``abs_start`` (the tag name extends the keyword, or the
 * keyword is a shadowed prefix of the scanned occurrence). */
static void
step_false_match(int64_t *st, const StepTables *tab, Py_ssize_t kid,
                 Py_ssize_t abs_start)
{
    if (!st[SS_ACTIVE])
        return;
    int64_t row = st[SS_ROW];
    if (tab->next[row * tab->K + kid] < 0)
        return; /* not in this stream's current frontier vocabulary */
    if (st[SS_PENDING_JUMP]) {
        int64_t j = tab->jump[row];
        if (j) {
            st[SS_D_JUMPS] += 1;
            st[SS_D_JUMP_CHARS] += j;
            st[SS_SEARCH_FROM] += j;
        }
        st[SS_PENDING_JUMP] = 0;
    }
    if (abs_start < st[SS_SEARCH_FROM])
        return;
    if (abs_start == st[SS_LAST_POS])
        return; /* shadowed by a longer keyword at the same position */
    st[SS_LAST_POS] = abs_start;
    st[SS_D_LOCAL_SCAN] += 1;
}

static PyObject *
accel_step_events(PyObject *Py_UNUSED(self), PyObject *args)
{
    PyObject *capsule, *steps;
    Py_buffer state, pstarts, pids, buf, spans;
    Py_ssize_t tbase, scan_from;
    int eof;
    if (!PyArg_ParseTuple(args, "OOw*y*y*y*nnpw*", &capsule, &steps, &state,
                          &pstarts, &pids, &buf, &tbase, &scan_from, &eof,
                          &spans))
        return NULL;
    PyObject *result = NULL;
    StepTables **tabs = NULL;
    AccelKeywords *ak = keywords_from_capsule(capsule);
    if (ak == NULL)
        goto done;
    if (state.len % (SS_STRIDE * sizeof(int64_t)) != 0) {
        PyErr_SetString(PyExc_ValueError,
                        "state array must hold 16-int64 stream blocks");
        goto done;
    }
    Py_ssize_t nstreams =
        state.len / (SS_STRIDE * (Py_ssize_t)sizeof(int64_t));
    if (!PyTuple_Check(steps) || PyTuple_GET_SIZE(steps) != nstreams) {
        PyErr_SetString(PyExc_ValueError,
                        "step programs do not match the state array");
        goto done;
    }
    if (pstarts.len < (ak->n + 1) * (Py_ssize_t)sizeof(int64_t)) {
        PyErr_SetString(PyExc_ValueError, "prefix-start table too small");
        goto done;
    }
    tabs = PyMem_Malloc((size_t)(nstreams ? nstreams : 1) *
                        sizeof(StepTables *));
    if (tabs == NULL) {
        PyErr_NoMemory();
        goto done;
    }
    for (Py_ssize_t s = 0; s < nstreams; s++) {
        PyObject *item = PyTuple_GET_ITEM(steps, s);
        if (item == Py_None) {
            tabs[s] = NULL;
            continue;
        }
        StepTables *t =
            (StepTables *)PyCapsule_GetPointer(item, STEP_CAPSULE_NAME);
        if (t == NULL)
            goto done;
        if (t->K != ak->n) {
            PyErr_SetString(PyExc_ValueError,
                            "stale step program: keyword spaces differ");
            goto done;
        }
        tabs[s] = t;
    }

    const unsigned char *text = (const unsigned char *)buf.buf;
    Py_ssize_t wlen = buf.len;
    int64_t *st_all = (int64_t *)state.buf;
    const int64_t *prefix_starts = (const int64_t *)pstarts.buf;
    const int64_t *prefix_ids = (const int64_t *)pids.buf;
    int64_t *span_out = (int64_t *)spans.buf;
    Py_ssize_t span_cap = spans.len / (3 * (Py_ssize_t)sizeof(int64_t));
    Py_ssize_t span_count = 0;
    Py_ssize_t tokens_delta = 0;
    Py_ssize_t holdback = eof ? wlen : wlen - ak->max_len + 1;
    Py_ssize_t p = scan_from - tbase;
    if (p < 0)
        p = 0;
    int status = STEP_DONE;
    Py_ssize_t next_from = tbase + holdback;

    while (p < holdback) {
        const unsigned char *hit =
            memchr(text + p, '<', (size_t)(wlen - p));
        if (hit == NULL)
            break;
        Py_ssize_t c = hit - text;
        if (c >= holdback)
            break;
        Py_ssize_t found_k = -1;
        for (Py_ssize_t k = 0; k < ak->n; k++) {
            Py_ssize_t len = ak->lens[k];
            if (c + len <= wlen &&
                memcmp(text + c, ak->kws[k], (size_t)len) == 0) {
                found_k = k;
                break;
            }
        }
        if (found_k < 0) {
            p = c + 1;
            continue;
        }
        Py_ssize_t kid = ak->ids[found_k];
        Py_ssize_t after = c + ak->lens[found_k];
        Py_ssize_t abs_start = c + tbase;

        /* Subscription probe: some live stream's current frontier
         * vocabulary contains this keyword (== the Python registry). */
        int sub_any = 0;
        for (Py_ssize_t s = 0; s < nstreams; s++) {
            int64_t *st = st_all + s * SS_STRIDE;
            const StepTables *tab = tabs[s];
            if (tab == NULL || !st[SS_ACTIVE])
                continue;
            if (tab->next[st[SS_ROW] * tab->K + kid] >= 0) {
                sub_any = 1;
                break;
            }
        }
        if (!sub_any)
            goto prefixes; /* the prefix expansion still applies */
        if (after >= wlen && !eof) {
            /* The extends verdict needs input beyond the window. */
            status = STEP_SUSPEND;
            next_from = abs_start;
            goto out;
        }
        if (after < wlen && name_byte[text[after]]) {
            /* False match: the tag name extends the keyword. */
            for (Py_ssize_t s = 0; s < nstreams; s++) {
                if (tabs[s] != NULL)
                    step_false_match(st_all + s * SS_STRIDE, tabs[s], kid,
                                     abs_start);
            }
            goto prefixes;
        }
        {
            int suspend_quote;
            Py_ssize_t suspend_cursor;
            Py_ssize_t closing = scan_tag_end(text, after, wlen,
                                              &suspend_quote, &suspend_cursor);
            if (closing < 0) {
                status = eof ? STEP_UNCLOSED_EOF : STEP_SUSPEND;
                next_from = abs_start;
                goto out;
            }
            if (span_count + nstreams > span_cap) {
                /* Worst case one span per stream on this event: apply the
                 * batched spans in Python and continue from here. */
                status = STEP_SPANS_FULL;
                next_from = abs_start;
                goto out;
            }
            int bachelor = closing > after && text[closing - 1] == '/';
            Py_ssize_t scan_chars = closing - after + 1;
            Py_ssize_t abs_end = closing + tbase;
            if (bachelor) {
                /* Bail precheck: a bachelor open whose close transition is
                 * missing raises in Python.  Detect it *before* mutating
                 * any stream so the event replays identically there. */
                for (Py_ssize_t s = 0; s < nstreams; s++) {
                    int64_t *st = st_all + s * SS_STRIDE;
                    const StepTables *tab = tabs[s];
                    if (tab == NULL || !st[SS_ACTIVE])
                        continue;
                    int64_t row = st[SS_ROW];
                    Py_ssize_t cell = row * tab->K + kid;
                    if (tab->next[cell] < 0)
                        continue;
                    int64_t eff = st[SS_SEARCH_FROM] +
                        (st[SS_PENDING_JUMP] ? tab->jump[row] : 0);
                    if (abs_start < eff || abs_start == st[SS_LAST_POS])
                        continue;
                    if ((tab->cellflags[cell] & CF_OPEN) &&
                        tab->b_next[cell] < 0) {
                        status = STEP_BAIL;
                        next_from = abs_start;
                        goto out;
                    }
                }
            }
            tokens_delta += 1;
            for (Py_ssize_t s = 0; s < nstreams; s++) {
                int64_t *st = st_all + s * SS_STRIDE;
                const StepTables *tab = tabs[s];
                if (tab == NULL || !st[SS_ACTIVE])
                    continue;
                int64_t row = st[SS_ROW];
                Py_ssize_t cell = row * tab->K + kid;
                int64_t nx = tab->next[cell];
                if (nx < 0)
                    continue;
                if (st[SS_PENDING_JUMP]) {
                    int64_t j = tab->jump[row];
                    if (j) {
                        st[SS_D_JUMPS] += 1;
                        st[SS_D_JUMP_CHARS] += j;
                        st[SS_SEARCH_FROM] += j;
                    }
                    st[SS_PENDING_JUMP] = 0;
                }
                if (abs_start < st[SS_SEARCH_FROM])
                    continue;
                if (abs_start == st[SS_LAST_POS])
                    continue;
                st[SS_D_LOCAL_SCAN] += scan_chars;
                st[SS_D_TOKENS_MATCHED] += 1;
                int64_t flags = tab->cellflags[cell];
                int64_t newrow;
                if (bachelor && (flags & CF_OPEN)) {
                    /* Open and close behaviour in one step (Figure 4); the
                     * tag is emitted at most once, and not at all inside
                     * an active copy region. */
                    if (!st[SS_COPY_ACTIVE] && (flags & CF_BACHELOR_COPY)) {
                        span_out[3 * span_count] = (int64_t)s;
                        span_out[3 * span_count + 1] = (int64_t)abs_start;
                        span_out[3 * span_count + 2] = (int64_t)(abs_end + 1);
                        span_count += 1;
                        st[SS_D_TOKENS_COPIED] += 1;
                    }
                    newrow = tab->b_next[cell];
                }
                else {
                    newrow = nx;
                    int64_t act = tab->action[cell];
                    if (act == ACT_COPY_ON) {
                        if (!st[SS_COPY_ACTIVE]) {
                            st[SS_COPY_ACTIVE] = 1;
                            st[SS_COPY_TAG] = tab->tagid[cell];
                            st[SS_COPY_EMITTED] = abs_start;
                        }
                    }
                    else if (act == ACT_COPY_OFF) {
                        if (st[SS_COPY_ACTIVE] &&
                            tab->tagid[cell] == st[SS_COPY_TAG]) {
                            span_out[3 * span_count] = (int64_t)s;
                            span_out[3 * span_count + 1] = st[SS_COPY_EMITTED];
                            span_out[3 * span_count + 2] =
                                (int64_t)(abs_end + 1);
                            span_count += 1;
                            st[SS_D_REGIONS] += 1;
                            st[SS_D_TOKENS_COPIED] += 1;
                            st[SS_COPY_ACTIVE] = 0;
                            st[SS_COPY_TAG] = 0;
                            st[SS_COPY_EMITTED] = 0;
                        }
                        else if (!st[SS_COPY_ACTIVE]) {
                            /* Asymmetric table entries degrade gracefully
                             * to copying the closing tag itself. */
                            span_out[3 * span_count] = (int64_t)s;
                            span_out[3 * span_count + 1] = (int64_t)abs_start;
                            span_out[3 * span_count + 2] =
                                (int64_t)(abs_end + 1);
                            span_count += 1;
                            st[SS_D_TOKENS_COPIED] += 1;
                        }
                    }
                    else if (act == ACT_COPY_TAG) {
                        if (!st[SS_COPY_ACTIVE]) {
                            span_out[3 * span_count] = (int64_t)s;
                            span_out[3 * span_count + 1] = (int64_t)abs_start;
                            span_out[3 * span_count + 2] =
                                (int64_t)(abs_end + 1);
                            span_count += 1;
                            st[SS_D_TOKENS_COPIED] += 1;
                        }
                    }
                }
                st[SS_ROW] = newrow;
                st[SS_SEARCH_FROM] = abs_end;
                st[SS_PENDING_JUMP] = 1;
                st[SS_LAST_POS] = -1;
                if (tab->is_final[newrow]) {
                    st[SS_DONE] = 1;
                    st[SS_ACTIVE] = 0;
                }
            }
        }
    prefixes:
        /* Union keywords that are prefixes of this occurrence co-occur at
         * its position and are always false matches there. */
        for (Py_ssize_t pi = prefix_starts[kid]; pi < prefix_starts[kid + 1];
             pi++) {
            Py_ssize_t pid = (Py_ssize_t)prefix_ids[pi];
            for (Py_ssize_t s = 0; s < nstreams; s++) {
                if (tabs[s] != NULL)
                    step_false_match(st_all + s * SS_STRIDE, tabs[s], pid,
                                     abs_start);
            }
        }
        p = after; /* the union scan is non-overlapping (finditer) */
    }

out:
    result = Py_BuildValue("(innn)", status, next_from, span_count,
                           tokens_delta);
done:
    PyMem_Free(tabs);
    PyBuffer_Release(&state);
    PyBuffer_Release(&pstarts);
    PyBuffer_Release(&pids);
    PyBuffer_Release(&buf);
    PyBuffer_Release(&spans);
    return result;
}

/* ====================================================================
 * Tokenizer boundary kernel (TokenizerSession's completeness scan)
 * ==================================================================== */

/* ``str.find(needle, from)`` over a byte window, needle length 2-3. */
static Py_ssize_t
find_sub(const unsigned char *text, Py_ssize_t from, Py_ssize_t limit,
         const char *needle, Py_ssize_t nlen)
{
    Py_ssize_t p = from < 0 ? 0 : from;
    while (p + nlen <= limit) {
        const unsigned char *hit =
            memchr(text + p, (unsigned char)needle[0],
                   (size_t)(limit - p - nlen + 1));
        if (hit == NULL)
            return -1;
        Py_ssize_t c = hit - text;
        if (memcmp(text + c, needle, (size_t)nlen) == 0)
            return c;
        p = c + 1;
    }
    return -1;
}

static Py_ssize_t
find_byte(const unsigned char *text, Py_ssize_t from, Py_ssize_t limit,
          int ch)
{
    if (from >= limit)
        return -1;
    const unsigned char *hit =
        memchr(text + from, ch, (size_t)(limit - from));
    return hit == NULL ? -1 : hit - text;
}

/* C port of ``TokenizerSession._markup_end`` over a UCS1 buffer: the end
 * offset of the markup construct at ``text[offset]``, or -1 (needs more
 * input) with the resumable (scan, depth, quote) state advanced exactly
 * like the Python scan does. */
static Py_ssize_t
str_markup_end(const unsigned char *text, Py_ssize_t L, Py_ssize_t offset,
               Py_ssize_t *scan, Py_ssize_t *depth, int *quote)
{
    if (L - offset < 2)
        return -1;
    unsigned char second = text[offset + 1];
    if (second == '?') {
        Py_ssize_t from = offset + (*scan > 2 ? *scan : 2);
        Py_ssize_t found = find_sub(text, from, L, "?>", 2);
        if (found < 0) {
            Py_ssize_t ns = L - offset - 1;
            *scan = ns > 2 ? ns : 2;
            return -1;
        }
        return found + 2;
    }
    if (second == '!') {
        static const struct {
            const char *prefix;
            Py_ssize_t plen;
            const char *term;
            Py_ssize_t tlen;
            Py_ssize_t body;
        } decls[2] = {
            {"<!--", 4, "-->", 3, 4},
            {"<![CDATA[", 9, "]]>", 3, 9},
        };
        Py_ssize_t avail = L - offset;
        for (int d = 0; d < 2; d++) {
            Py_ssize_t n = decls[d].plen < avail ? decls[d].plen : avail;
            if (memcmp(text + offset, decls[d].prefix, (size_t)n) == 0) {
                if (avail < decls[d].plen)
                    return -1; /* still ambiguous: wait for the full prefix */
                Py_ssize_t from = offset +
                    (*scan > decls[d].body ? *scan : decls[d].body);
                Py_ssize_t found =
                    find_sub(text, from, L, decls[d].term, decls[d].tlen);
                if (found < 0) {
                    Py_ssize_t ns = L - offset - decls[d].tlen + 1;
                    *scan = ns > decls[d].body ? ns : decls[d].body;
                    return -1;
                }
                return found + decls[d].tlen;
            }
        }
        {
            Py_ssize_t n = avail < 9 ? avail : 9;
            if (memcmp(text + offset, "<!DOCTYPE", (size_t)n) == 0) {
                if (avail < 9)
                    return -1;
                /* Bracket-depth scan with the depth carried across
                 * suspensions, like the Python loop. */
                Py_ssize_t cursor = offset + (*scan > 9 ? *scan : 9);
                Py_ssize_t dep = *depth;
                for (;;) {
                    Py_ssize_t gt = find_byte(text, cursor, L, '>');
                    Py_ssize_t limit = gt < 0 ? L : gt;
                    Py_ssize_t lb = find_byte(text, cursor, limit, '[');
                    Py_ssize_t rb = find_byte(text, cursor, limit, ']');
                    if (lb >= 0 && (rb < 0 || lb < rb)) {
                        dep += 1;
                        cursor = lb + 1;
                        continue;
                    }
                    if (rb >= 0) {
                        dep -= 1;
                        cursor = rb + 1;
                        continue;
                    }
                    if (gt >= 0 && dep <= 0) {
                        *depth = dep;
                        return gt + 1;
                    }
                    if (gt < 0) {
                        *depth = dep;
                        *scan = L - offset;
                        return -1;
                    }
                    cursor = gt + 1; /* a '>' inside the internal subset */
                }
            }
        }
        return L; /* unrecognised declaration: the reader raises */
    }
    /* A start or end tag: scan for '>' outside quoted attribute values. */
    {
        Py_ssize_t cursor = offset + (*scan > 1 ? *scan : 1);
        for (;;) {
            if (*quote) {
                Py_ssize_t closing = find_byte(text, cursor, L, *quote);
                if (closing < 0) {
                    *scan = L - offset;
                    return -1;
                }
                *quote = 0;
                cursor = closing + 1;
            }
            Py_ssize_t gt = find_byte(text, cursor, L, '>');
            Py_ssize_t limit = gt < 0 ? L : gt;
            Py_ssize_t dq = find_byte(text, cursor, limit, '"');
            Py_ssize_t sq = find_byte(text, cursor, limit, '\'');
            if (dq < 0 && sq < 0) {
                if (gt < 0) {
                    *scan = L - offset;
                    return -1;
                }
                return gt + 1;
            }
            if (dq >= 0 && (sq < 0 || dq < sq)) {
                *quote = '"';
                cursor = dq + 1;
            }
            else {
                *quote = '\'';
                cursor = sq + 1;
            }
        }
    }
}

static PyObject *
accel_scan_str_tokens(PyObject *Py_UNUSED(self), PyObject *args)
{
    PyObject *textobj;
    int eof, quote;
    Py_ssize_t scan, depth;
    if (!PyArg_ParseTuple(args, "Opnni", &textobj, &eof, &scan, &depth,
                          &quote))
        return NULL;
    if (!PyUnicode_Check(textobj)) {
        PyErr_SetString(PyExc_TypeError, "expected a str buffer");
        return NULL;
    }
    if (PyUnicode_KIND(textobj) != PyUnicode_1BYTE_KIND)
        Py_RETURN_NONE; /* non-latin-1 text: the Python loop handles it */
    Py_ssize_t L = PyUnicode_GET_LENGTH(textobj);
    if (eof) {
        /* At end of input every buffered token is complete (or raises in
         * the reader); no resume state survives. */
        return Py_BuildValue("(nnni)", L, (Py_ssize_t)0, (Py_ssize_t)0, 0);
    }
    const unsigned char *text =
        (const unsigned char *)PyUnicode_1BYTE_DATA(textobj);
    Py_ssize_t offset = 0;
    while (offset < L) {
        if (text[offset] == '<') {
            Py_ssize_t end =
                str_markup_end(text, L, offset, &scan, &depth, &quote);
            if (end < 0)
                break;
            offset = end;
        }
        else {
            Py_ssize_t lt = find_byte(text, offset + scan, L, '<');
            if (lt < 0) {
                scan = L - offset;
                break;
            }
            offset = lt;
        }
        /* The incoming resume state belongs to the head token only. */
        scan = 0;
        depth = 0;
        quote = 0;
    }
    return Py_BuildValue("(nnni)", offset, scan, depth, quote);
}

static PyMethodDef accel_methods[] = {
    {"compile_keywords", accel_compile_keywords, METH_VARARGS,
     "compile_keywords(keywords, is_single) -> capsule\n\n"
     "Compile a sequence of non-empty bytes keywords (tag keywords: '<'\n"
     "only at offset 0) into the C search structure used by find_token\n"
     "and scan_events.  Keyword ids are the original sequence indices."},
    {"find_token", accel_find_token, METH_VARARGS,
     "find_token(capsule, buf, tbase, wend, eof, phase, begin, pos, kwi,\n"
     "           aux, quote)\n"
     "-> (status, phase, begin, pos, kwi, aux, quote, keep_from, tag_end,\n"
     "    bachelor, d_searches, d_comparisons, d_shifts, d_shift_total,\n"
     "    d_matches, d_local_scan)\n\n"
     "One resumable token step: frontier search, false-match rejection\n"
     "and end-of-tag scan over one buffered window (absolute offsets;\n"
     "buf[0] sits at absolute offset tbase).  status 0 = token complete,\n"
     "1 = suspended (resume vector in phase..quote), 2 = no token before\n"
     "end of input.  The d_* fields are statistic deltas replaying the\n"
     "native backend formulas."},
    {"scan_events", accel_scan_events, METH_VARARGS,
     "scan_events(capsule, buf, tbase, scan_from, eof, out)\n"
     "-> (count, next_from, done)\n\n"
     "Union-scan one window into flat int64 events of 4 fields each:\n"
     "(start, keyword_id, closing_or_minus1, flags) with flags 1=extends\n"
     "(false match), 2=bachelor, 4=undecided.  Writes into the int64\n"
     "buffer 'out' (capacity len(out)//4 events); done=0 means the\n"
     "buffer filled and the scan should continue from next_from."},
    {"compile_step", accel_compile_step, METH_VARARGS,
     "compile_step(next, action, tagid, cellflags, b_next, jump, final,\n"
     "             S, K) -> capsule\n\n"
     "Compile one stream's flat Figure-4 step tables (int64 buffers of\n"
     "S*K cells / S rows over the union keyword id space of the scan\n"
     "capsule) into an owned C structure for step_events.  The buffers\n"
     "are copied; the capsule owns the copy."},
    {"step_events", accel_step_events, METH_VARARGS,
     "step_events(scan_capsule, step_capsules, state, prefix_starts,\n"
     "            prefix_ids, buf, tbase, scan_from, eof, spans)\n"
     "-> (status, next_from, span_count, tokens_delta)\n\n"
     "The integrated shared-scan dispatch loop: union occurrence sweep,\n"
     "per-stream subscription probe, Figure-4 state transition and the\n"
     "output-span decisions in one C pass.  'state' holds one 16-int64\n"
     "block per stream (see the SS_* layout); decided copy spans are\n"
     "written into 'spans' as (stream, start, end_exclusive) triples.\n"
     "status: 0 done, 1 suspend at next_from, 2 unclosed tag at EOF\n"
     "(next_from = tag start), 3 bail to the Python path (transition\n"
     "error; nothing was mutated for the offending event), 4 span\n"
     "buffer full (apply spans, call again from next_from)."},
    {"scan_str_tokens", accel_scan_str_tokens, METH_VARARGS,
     "scan_str_tokens(text, eof, scan, doctype_depth, quote)\n"
     "-> (complete_until, scan, doctype_depth, quote) or None\n\n"
     "Tokenizer boundary sweep over a str buffer (latin-1 storage only;\n"
     "returns None for wider text): complete_until is the offset up to\n"
     "which the buffer holds only complete tokens, the remaining fields\n"
     "are the resumable completeness-scan state of the incomplete tail\n"
     "(TokenizerSession._markup_end semantics)."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef accel_module = {
    PyModuleDef_HEAD_INIT,
    "repro._accel",
    "C hot-path kernels for the SMP prefilter (optional; see repro.accel).",
    -1,
    accel_methods,
};

PyMODINIT_FUNC
PyInit__accel(void)
{
    init_name_byte();
    return PyModule_Create(&accel_module);
}
