"""Unified streaming pipeline: prefilter → project → evaluate.

The paper's Figure 7(b) experiment pipes SMP prefilter output directly into
a streaming XPath engine (SPEX) and observes that the pipeline runs at
nearly the speed of prefiltering alone.  This module is that pipeline as a
first-class API: the prefilter's incrementally emitted projection flows
chunk by chunk into the incremental tokenizer and the streaming evaluator,
so a query is answered over a multi-gigabyte document without ever holding
the document -- or its projection -- in one string::

    from repro.pipeline import XPathPipeline

    from repro.api import Source

    pipeline = XPathPipeline(dtd, "/site/people/person/name", backend="native")
    outcome = pipeline.evaluate(Source.from_file("site.xml"))  # O(chunk) memory
    for item in outcome.results:
        print(item.serialize())
    print(outcome.filter_stats.projection_ratio)

    # any Source works: from_mmap, from_socket, from_stdin, raw values...
    outcome = pipeline.evaluate(Source.from_mmap("site.xml"))

Projection paths are extracted from the query with the Marian & Siméon
extraction of Example 4 (:func:`repro.projection.extraction.
extract_paths_from_xpath`); compiled plans are shared through the
:meth:`~repro.core.prefilter.SmpPrefilter.cached` plan cache.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import IO, Iterable, Sequence

from repro import api
from repro.core.multi import MultiQueryEngine
from repro.core.prefilter import SmpPrefilter
from repro.core.sources import decode_chunks
from repro.core.stats import CompilationStatistics, RunStatistics
from repro.core.stream import DEFAULT_CHUNK_SIZE, iter_chunks
from repro.dtd.model import Dtd
from repro.projection.extraction import extract_paths_from_xpath
from repro.projection.paths import ProjectionPath
from repro.xpath.evaluator import ResultItem
from repro.xpath.streaming import StreamingStatistics, StreamingXPathEngine


@dataclass
class PipelineOutcome:
    """The result of one end-to-end pipeline run."""

    results: list[ResultItem]
    filter_stats: RunStatistics
    streaming_stats: StreamingStatistics
    compilation: CompilationStatistics = field(default_factory=CompilationStatistics)

    @property
    def projection_ratio(self) -> float:
        """Projected size / document size (what the evaluator was spared)."""
        return self.filter_stats.projection_ratio


class XPathPipeline:
    """Answer one XPath query over chunked documents via SMP prefiltering.

    Parameters
    ----------
    dtd:
        The schema of the incoming documents.
    query:
        An XPath query from the supported subset.  Its projection paths are
        extracted automatically; pass ``paths`` to override them.
    backend:
        Matcher backend of the prefilter (``"native"`` is the wall-clock
        oriented choice for pipelines).
    paths:
        Optional explicit projection paths (defaults to the extracted ones).
    use_plan_cache:
        Share the compiled prefilter through the global plan cache
        (:meth:`SmpPrefilter.cached`) instead of compiling privately.

    The pipeline object is immutable after construction and may be used for
    any number of concurrent :meth:`run` calls; every run opens its own
    filter and evaluator sessions.
    """

    def __init__(
        self,
        dtd: Dtd,
        query: str,
        *,
        backend: str = "native",
        paths: Sequence[ProjectionPath | str] | None = None,
        use_plan_cache: bool = True,
    ) -> None:
        self.dtd = dtd
        self.query = query
        self.engine = StreamingXPathEngine(query)
        projection_paths: Sequence[ProjectionPath | str] = (
            extract_paths_from_xpath(query) if paths is None else paths
        )
        compile_plan = SmpPrefilter.cached if use_plan_cache else SmpPrefilter.compile
        self.prefilter = compile_plan(
            dtd, projection_paths, backend=backend, add_default_paths=False
        )

    def evaluate(
        self,
        source,
        *,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> PipelineOutcome:
        """Filter and evaluate a :class:`repro.api.Source` (or raw value).

        The document is prefiltered incrementally through the unified
        dataflow API and every projected fragment is pushed straight into
        the streaming evaluator's session, so no whole-document (or
        whole-projection) string ever exists.  The prefilter stage is
        byte-native: byte sources are searched as-is and only the projected
        fragments -- the bytes actually copied -- are decoded for the
        evaluator.
        """
        evaluation = self.engine.session()
        run = api.Engine(api.Query.from_plan(self.prefilter)).run(
            api.Source.of(source, chunk_size=chunk_size),
            sinks=[api.CallbackSink(evaluation.feed, binary=False)],
        )
        results = evaluation.finish()
        return PipelineOutcome(
            results=results,
            filter_stats=run.single.stats,
            streaming_stats=evaluation.stats,
            compilation=self.prefilter.compilation,
        )

    def evaluate_unfiltered(
        self,
        source: "str | bytes | IO[str] | IO[bytes] | Iterable[str] | Iterable[bytes]",
        *,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> list[ResultItem]:
        """Evaluate the query without prefiltering (the Figure 7(b) baseline).

        Byte chunks are decoded incrementally on UTF-8 boundaries for the
        ``str``-based tokenizer -- this baseline pays the decode copy the
        prefiltered byte path avoids.
        """
        chunks = iter_chunks(source, chunk_size)
        return self.engine.evaluate_chunks(_text_chunks(chunks))

    @classmethod
    def multi(
        cls,
        dtd: Dtd,
        queries: Sequence[str],
        *,
        backend: str = "native",
        use_plan_cache: bool = True,
    ) -> "MultiXPathPipeline":
        """Answer N XPath queries over one shared document pass.

        The returned :class:`MultiXPathPipeline` prefilters the document
        once through the shared-scan :class:`~repro.core.multi.
        MultiQueryEngine` and pipes each query's projection straight into
        its own streaming evaluator session.
        """
        return MultiXPathPipeline(
            dtd, queries, backend=backend, use_plan_cache=use_plan_cache
        )


def _text_chunks(chunks):
    """Pass ``str`` chunks through; decode byte streams incrementally.

    A single source never mixes types, so the first chunk decides: ``str``
    streams pass through unchanged, byte streams go through the shared
    :func:`repro.core.sources.decode_chunks` bridge (which never splits a
    code point across emitted chunks).
    """
    iterator = iter(chunks)
    first = next(iterator, None)
    if first is None:
        return
    if isinstance(first, str):
        yield first
        yield from iterator
    else:
        yield from decode_chunks(itertools.chain([first], iterator))


@dataclass
class MultiPipelineOutcome:
    """The result of one shared-scan multi-query pipeline run."""

    queries: list[str]
    outcomes: list[PipelineOutcome]
    #: The once-paid shared-scan cost (timings, scanned characters).
    scan_stats: RunStatistics = field(default_factory=RunStatistics)

    def __iter__(self):
        return iter(zip(self.queries, self.outcomes))


class MultiXPathPipeline:
    """N XPath queries over chunked documents, one shared document pass.

    Construction compiles every query's prefilter (plans shared through the
    global cache) and one union-scan engine; the pipeline object is
    immutable and may be used for any number of concurrent :meth:`run`
    calls.  Per run, every query keeps its own filter statistics, streaming
    evaluator session and results -- identical to running N single-query
    :class:`XPathPipeline` objects -- while the document is tokenized and
    scanned once.
    """

    def __init__(
        self,
        dtd: Dtd,
        queries: Sequence[str],
        *,
        backend: str = "native",
        use_plan_cache: bool = True,
    ) -> None:
        self.dtd = dtd
        self.queries = [str(query) for query in queries]
        self.engines = [StreamingXPathEngine(query) for query in self.queries]
        self.prefilter_engine = MultiQueryEngine(
            dtd, self.queries, backend=backend, use_plan_cache=use_plan_cache
        )

    def evaluate(
        self,
        source,
        *,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> MultiPipelineOutcome:
        """Filter and evaluate a :class:`repro.api.Source` against every
        query at once.

        The document is prefiltered incrementally in one byte-native pass;
        each query's projected fragments flow straight into its private
        streaming evaluator session, so no whole-document (or
        whole-projection) string ever exists and only the copied fragments
        are decoded.
        """
        evaluations = [engine.session() for engine in self.engines]
        run = api.Engine._wrap_multi(self.prefilter_engine).run(
            api.Source.of(source, chunk_size=chunk_size),
            sinks=[
                api.CallbackSink(evaluation.feed, binary=False)
                for evaluation in evaluations
            ],
        )
        outcomes = [
            PipelineOutcome(
                results=evaluation.finish(),
                filter_stats=result.stats,
                streaming_stats=evaluation.stats,
                compilation=result.compilation,
            )
            for evaluation, result in zip(evaluations, run.results)
        ]
        return MultiPipelineOutcome(
            queries=list(self.queries),
            outcomes=outcomes,
            scan_stats=run.scan_stats,
        )
