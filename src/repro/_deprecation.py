"""Warn-once deprecation plumbing for the legacy entry points.

The PR-4 dataflow redesign (:mod:`repro.api`) turned the accumulated
``filter_*`` / ``run_*`` method matrix into thin delegating shims.  Every
shim calls :func:`warn_legacy` exactly once per process so long-running
services logging warnings are nudged toward the Source → Query → Engine →
Sink spelling without drowning in repeats.
"""

from __future__ import annotations

import warnings

#: Shim names that have already warned in this process.
_warned: set[str] = set()


def warn_legacy(name: str, replacement: str, *, stacklevel: int = 3) -> None:
    """Emit one :class:`DeprecationWarning` per process for ``name``.

    ``replacement`` names the :mod:`repro.api` spelling the caller should
    migrate to; it is embedded in the message verbatim.
    """
    if name in _warned:
        return
    _warned.add(name)
    warnings.warn(
        f"{name} is deprecated; use {replacement} instead",
        DeprecationWarning,
        stacklevel=stacklevel,
    )


def reset_warned() -> None:
    """Forget which shims warned (test isolation helper)."""
    _warned.clear()
