"""Exception hierarchy shared by all ``repro`` subpackages.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still being
able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class MatchingError(ReproError):
    """Raised for invalid string-matching inputs (e.g. empty pattern sets)."""


class XmlSyntaxError(ReproError):
    """Raised by the tokenizer / tree builder on malformed XML input.

    Attributes
    ----------
    position:
        Character offset in the input at which the problem was detected, or
        ``None`` when the offset is unknown.
    """

    def __init__(self, message: str, position: int | None = None) -> None:
        if position is not None:
            message = f"{message} (at offset {position})"
        super().__init__(message)
        self.position = position


class SourceError(ReproError):
    """Raised when a byte source fails while a stream is being read.

    Wraps the raw ``OSError`` family raised mid-chunk by file, stdin and
    socket sources so callers can resume or report uniformly instead of
    catching platform-specific errno soup.  Open-time failures (for example
    ``FileNotFoundError``) are *not* wrapped: they describe the request, not
    the stream.

    Attributes
    ----------
    offset:
        Absolute byte offset reached in the stream before the failure, i.e.
        how many bytes were successfully delivered.
    transient:
        ``True`` when the underlying error is a transient condition
        (``EINTR``/``ECONNRESET``/timeouts/...) that a retry could clear.
    attempts:
        Number of read attempts made at this offset (``> 1`` when a
        :class:`~repro.core.sources.RetryPolicy` was active and exhausted).
    """

    def __init__(
        self,
        message: str,
        *,
        offset: int = 0,
        transient: bool = False,
        attempts: int = 1,
    ) -> None:
        super().__init__(message)
        self.offset = offset
        self.transient = transient
        self.attempts = attempts


class DtdSyntaxError(ReproError):
    """Raised when a DTD document cannot be parsed."""


class DtdValidationError(ReproError):
    """Raised when a DTD is structurally unusable for SMP compilation.

    Examples: an element is referenced but never declared, or the root
    element cannot be determined.
    """


class DtdRecursionError(DtdValidationError):
    """Raised when the DTD is recursive.

    The SMP static analysis of the paper requires a non-recursive schema
    (Section II: "We assume that a nonrecursive schema is available").
    """

    def __init__(self, cycle: list[str]) -> None:
        super().__init__(
            "DTD is recursive; SMP compilation requires a non-recursive "
            "schema. Cycle: " + " -> ".join(cycle)
        )
        self.cycle = cycle


class ProjectionPathError(ReproError):
    """Raised when a projection-path expression cannot be parsed."""


class XPathSyntaxError(ReproError):
    """Raised when an XPath expression cannot be parsed."""


class QueryError(ReproError):
    """Raised by the query engines for unsupported or invalid queries."""


class CompilationError(ReproError):
    """Raised when the SMP static analysis cannot compile its inputs."""


class RuntimeFilterError(ReproError):
    """Raised when the SMP runtime encounters input it cannot handle.

    This typically means the document is not valid with respect to the DTD
    the prefilter was compiled for, which violates the algorithm's input
    contract (Section II of the paper).
    """


class WorkloadError(ReproError):
    """Raised by the synthetic data generators for invalid parameters."""


class CheckpointError(ReproError):
    """Raised when a session checkpoint cannot be written, read or applied.

    Covers torn or corrupted checkpoint files (magic/version/length/checksum
    mismatches -- a damaged checkpoint is always rejected whole, never
    half-restored), attempts to restore a checkpoint into an engine whose
    query set differs from the one that wrote it, and session states that
    cannot be captured (e.g. an unseekable source with no capturable
    boundary yet).
    """
