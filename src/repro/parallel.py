"""Multi-process sharded execution of the SMP prefilter.

The prefilter is embarrassingly parallel across *documents*: each filter
session is isolated state over one document, and compiled plans are shared,
hashable and rebuildable from their (DTD, paths, backend) key through the
plan cache.  This module shards a multi-document workload across a
persistent pool of worker processes:

* :class:`EngineSpec` -- a picklable description of an engine.  Workers
  rebuild the engine once, at startup, through the existing plan cache
  (under the ``fork`` start method the parent's compiled tables are
  inherited for free; under ``spawn`` the spec is pickled and recompiled).
* :class:`WorkerPool` -- ``jobs`` persistent worker processes, each with
  its own task queue (sticky routing for serving sessions) and a shared
  result queue drained by a collector thread that resolves
  :class:`concurrent.futures.Future` objects in the parent.
* :func:`execute_corpus` -- the corpus driver: submits one task per
  document (bounded in-flight, so record-split corpora stream), and yields
  per-document outcomes **in corpus order** regardless of completion order
  -- the order-preserving merge that makes parallel output byte-identical
  to sequential execution.
* :class:`RemoteSession` -- a streaming filter session living inside a
  worker process (``feed``/``finish`` block on the worker's reply).  The
  asyncio bridge (:func:`repro.aio.serve` with ``workers=N``) dispatches
  these through ``run_in_executor`` so the CPU work leaves the event loop.

Inside each worker, document ingestion runs the zero-copy path: one
recycled :class:`~repro.core.sources.BufferPool` buffer per worker is
filled via ``readinto`` and fed borrowed to the byte-native session.

The user-facing surface is :class:`repro.api.Engine` with
``mode="parallel"`` (and ``python -m repro --jobs N``); this module is the
machinery underneath.
"""

from __future__ import annotations

import concurrent.futures
import itertools
import os
import pickle
import queue
import threading
import time
import traceback
from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

import multiprocessing

from repro import faults
from repro.core.sources import BufferPool, RetryPolicy, is_transient
from repro.core.stats import RunStatistics
from repro.dtd.model import Dtd
from repro.errors import QueryError, ReproError

__all__ = [
    "DocumentFailure",
    "DocumentOutcome",
    "EngineSpec",
    "ParallelExecutionError",
    "RemoteSession",
    "WorkerPool",
    "default_jobs",
    "execute_corpus",
]

#: Worker command tags (first tuple element of a task-queue message).
_DOC = "doc"
_OPEN = "open"
_FEED = "feed"
_FINISH = "finish"
_CLOSE = "close"

#: How many documents may be in flight per worker before the corpus driver
#: waits for the oldest one -- bounds memory when sharding a record-split
#: stream whose blobs live in the task queue.
_PENDING_PER_WORKER = 4

#: Grace period between teardown escalation steps (``terminate`` has been
#: sent / ``kill`` has been sent -> how long to wait for the exit).
_KILL_GRACE = 5.0


def default_jobs() -> int:
    """The default worker count: the CPUs this process may run on."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - platforms without affinity
        return max(1, os.cpu_count() or 1)


class ParallelExecutionError(ReproError):
    """A sharded run failed; names the failing document.

    ``document`` is the failing path (or record name), ``original`` the
    worker-side exception when it could be pickled back (also attached as
    ``__cause__``), and ``worker_traceback`` the worker's formatted
    traceback for post-mortem logging.  ``transient`` marks failures a
    resubmission could clear -- a worker that died mid-task, an expired
    per-document deadline, or a transient I/O error
    (:func:`repro.core.sources.is_transient`) -- as opposed to a poisoned
    document that will fail the same way every time.  ``attempts`` counts
    how many times the document was tried when retry was enabled.
    """

    def __init__(
        self,
        message: str,
        *,
        document: str | None = None,
        original: BaseException | None = None,
        worker_traceback: str | None = None,
        transient: bool = False,
        attempts: int = 1,
    ) -> None:
        super().__init__(message)
        self.document = document
        self.original = original
        self.worker_traceback = worker_traceback
        self.transient = transient
        self.attempts = attempts


# ----------------------------------------------------------------------
# Engine specification (what crosses the process boundary)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _QuerySpec:
    """One query of an :class:`EngineSpec`, in plan-cache key terms."""

    paths: tuple[str, ...]
    backend: str
    add_default_paths: bool
    label: str


@dataclass(frozen=True)
class EngineSpec:
    """A picklable engine description rebuilt via the shared plan cache.

    Captures exactly the plan-cache key of every query (paths, backend,
    default-path flag) plus the DTD, so a worker's :meth:`build` resolves
    to one compilation per distinct query per process -- prebuilt plans are
    re-derived from their compiled path set rather than shipped.
    """

    dtd: Dtd
    queries: tuple[_QuerySpec, ...]
    mode: str = "auto"

    @classmethod
    def from_engine(cls, engine) -> "EngineSpec":
        """The spec of a :class:`repro.api.Engine` (any mode)."""
        specs = []
        for query in engine.queries:
            if query._prebuilt is not None:
                plan = query._prebuilt
                specs.append(_QuerySpec(
                    paths=tuple(str(path) for path in plan.paths),
                    backend=plan.backend,
                    add_default_paths=False,
                    label=query.label,
                ))
            else:
                specs.append(_QuerySpec(
                    paths=query.paths,
                    backend=query.backend,
                    add_default_paths=query.add_default_paths,
                    label=query.label,
                ))
        mode = engine.mode if engine.mode in ("search", "shared") else "auto"
        return cls(dtd=engine.dtd, queries=tuple(specs), mode=mode)

    def build(self):
        """Compile the engine in this process (plans come from the cache)."""
        from repro import api

        return api.Engine(
            [
                api.Query.from_paths(
                    self.dtd,
                    spec.paths,
                    backend=spec.backend,
                    add_default_paths=spec.add_default_paths,
                    label=spec.label,
                )
                for spec in self.queries
            ],
            mode=self.mode,
        )

    @property
    def labels(self) -> list[str]:
        return [spec.label for spec in self.queries]


# ----------------------------------------------------------------------
# Per-document results
# ----------------------------------------------------------------------
@dataclass
class DocumentFailure:
    """One quarantined document of a corpus run (``on_error != "raise"``).

    ``name`` is the document path or record name, ``attempts`` how many
    times it was tried (retry included), and ``error`` the final
    :class:`ParallelExecutionError` -- its ``original``/``worker_traceback``
    carry the root cause.
    """

    index: int
    name: str
    attempts: int
    error: ParallelExecutionError

    @property
    def cause(self) -> BaseException:
        """The most specific exception available for this failure."""
        return self.error.original or self.error


@dataclass
class DocumentOutcome:
    """One document's share of a corpus run, in worker-neutral terms.

    ``failure`` is set (and ``outputs``/``stats`` are empty) when the
    document was quarantined under ``on_error="collect"``.
    """

    index: int
    name: str
    outputs: list[bytes]
    stats: list[RunStatistics]
    scan_stats: RunStatistics | None = None
    failure: DocumentFailure | None = None


def _document_payload_source(payload, pools: dict[int, BufferPool]):
    """Resolve a picklable document descriptor to a :class:`repro.api.Source`.

    Path documents are read with the chunk size their corpus source
    recorded in the payload, through a recycled buffer pool of exactly
    that size (one pool per distinct chunk size per worker).
    """
    from repro import api

    kind = payload[0]
    if kind == "path":
        _, path, chunk_size = payload
        pool = pools.get(chunk_size)
        if pool is None:
            pool = pools[chunk_size] = BufferPool(chunk_size, capacity=2)
        return api.Source.from_file(path, chunk_size=chunk_size, pool=pool)
    if kind == "blob":
        return api.Source.from_bytes(payload[1])
    raise ReproError(f"unknown document payload kind {kind!r}")


def _run_document(engine, payload, pools: dict[int, BufferPool]):
    """Filter one document; returns the (outputs, stats, scan_stats) triple."""
    source = _document_payload_source(payload, pools)
    run = engine.run(source, binary=True)
    return (
        [result.output for result in run.results],
        [result.stats for result in run.results],
        run.scan_stats,
    )


def _describe_error(error: BaseException):
    """A picklable description of a worker-side failure."""
    text = traceback.format_exc()
    transient = is_transient(error)
    try:
        pickle.dumps(error)
    except Exception:
        return (None, f"{type(error).__name__}: {error}", text, transient)
    return (error, str(error), text, transient)


def _worker_error(description) -> ParallelExecutionError:
    """Rebuild a worker-side failure description as a raisable error."""
    original, message, worker_traceback, transient = description
    error = ParallelExecutionError(
        message,
        original=original,
        worker_traceback=worker_traceback,
        transient=transient,
    )
    if original is not None:
        error.__cause__ = original
    return error


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
def _worker_main(spec: EngineSpec, tasks, results,
                 fault_plan=None, worker_uid: int = 0) -> None:
    """Worker loop: build the engine once, execute commands until sentinel.

    ``fault_plan`` is the :class:`repro.faults.FaultPlan` armed in the
    parent when the pool was created (``None`` in production): armed here
    with a per-worker scope so every worker -- including respawned ones,
    which get a fresh ``worker_uid`` -- draws its own deterministic fault
    sequence.
    """
    if fault_plan is not None:
        faults.arm(fault_plan, scope=f"worker-{worker_uid}")
    engine = spec.build()
    pools: dict[int, BufferPool] = {}
    sessions: dict = {}
    while True:
        command = tasks.get()
        if command is None:
            break
        kind = command[0]
        if kind == _DOC and fault_plan is not None:
            faults.worker_chaos()
        try:
            if kind == _DOC:
                _, request_id, name, payload = command
                results.put((request_id, True, _run_document(
                    engine, payload, pools
                )))
            elif kind == _OPEN:
                _, request_id, session_id, binary = command
                sessions[session_id] = engine.open(binary=binary)
                results.put((request_id, True, None))
            elif kind == _FEED:
                _, request_id, session_id, chunk = command
                results.put((request_id, True, sessions[session_id].feed(chunk)))
            elif kind == _FINISH:
                _, request_id, session_id = command
                session = sessions.pop(session_id)
                outputs = session.finish()
                results.put((request_id, True, (outputs, session.stats,
                                                session.scan_stats)))
            elif kind == _CLOSE:
                session = sessions.pop(command[1], None)
                if session is not None:
                    session.close()
        except BaseException as error:  # noqa: BLE001 - shipped to the caller
            if kind == _DOC or kind == _FEED or kind == _FINISH or kind == _OPEN:
                results.put((command[1], False, _describe_error(error)))


# ----------------------------------------------------------------------
# The pool
# ----------------------------------------------------------------------
class _Worker:
    """Parent-side handle of one worker process."""

    __slots__ = ("identifier", "uid", "process", "tasks", "outstanding",
                 "sessions")

    def __init__(self, identifier: int, uid: int, process, tasks) -> None:
        self.identifier = identifier
        self.uid = uid
        self.process = process
        self.tasks = tasks
        self.outstanding: set[int] = set()
        self.sessions: int = 0


class WorkerPool:
    """A persistent, supervised pool of filter worker processes.

    Each worker holds the compiled engine once and executes whole-document
    tasks (:meth:`submit_document`) or long-lived streaming sessions
    (:meth:`open_session`).  One task queue per worker gives sticky routing
    (a session's commands always reach its worker, in order); one shared
    result queue feeds a collector thread that resolves the returned
    futures.  Use as a context manager, or call :meth:`close` /
    :meth:`terminate`.

    **Supervision** (``supervise=True``, the default): a worker that dies
    mid-task -- crash, OOM kill, injected fault -- is detected by the
    collector's liveness pass, its in-flight futures fail with a
    *transient* :class:`ParallelExecutionError` (so :func:`execute_corpus`
    can resubmit under a :class:`~repro.core.sources.RetryPolicy`), and a
    replacement process is spawned into the same slot so the pool never
    shrinks.  Streaming sessions are worker-resident state and cannot be
    transparently replayed: their commands fail with a transient error and
    the caller re-opens.  Teardown escalates ``join(timeout)`` →
    ``terminate()`` → ``kill()`` so a hung worker (even one ignoring
    ``SIGTERM``) can never leak past :meth:`close`/:meth:`terminate`.
    """

    def __init__(
        self,
        engine,
        jobs: int,
        *,
        start_method: str | None = None,
        supervise: bool = True,
        shutdown_timeout: float = 30.0,
    ) -> None:
        if jobs < 1:
            raise QueryError(f"a worker pool needs jobs >= 1, got {jobs}")
        spec = engine if isinstance(engine, EngineSpec) \
            else EngineSpec.from_engine(engine)
        self.spec = spec
        self.jobs = jobs
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self._context = multiprocessing.get_context(start_method)
        self._results = self._context.Queue()
        self._lock = threading.Lock()
        self._futures: dict[int, tuple] = {}
        self._request_ids = itertools.count()
        self._session_ids = itertools.count()
        self._worker_uids = itertools.count()
        self._supervise = supervise
        self._shutdown_timeout = shutdown_timeout
        self._fault_plan = faults.active()
        self._retired_queues: list = []
        self._closed = False
        self._workers: list[_Worker] = []
        for identifier in range(jobs):
            self._workers.append(self._spawn(identifier))
        self._collector = threading.Thread(
            target=self._collect, daemon=True, name="repro-pool-collector"
        )
        self._collector.start()

    def _spawn(self, identifier: int) -> _Worker:
        """Start one worker process for slot ``identifier``."""
        uid = next(self._worker_uids)
        tasks = self._context.Queue()
        process = self._context.Process(
            target=_worker_main,
            args=(self.spec, tasks, self._results, self._fault_plan, uid),
            daemon=True,
            name=f"repro-filter-worker-{identifier}",
        )
        process.start()
        return _Worker(identifier, uid, process, tasks)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _dispatch(self, worker: _Worker, build_command: Callable[[int], tuple],
                  *, sticky: bool = False):
        future = concurrent.futures.Future()
        with self._lock:
            if self._closed:
                raise ReproError("the worker pool is closed")
            current = self._workers[worker.identifier]
            if worker is not current or not worker.process.is_alive():
                if sticky or not self._supervise:
                    raise ParallelExecutionError(
                        f"worker {worker.identifier} died unexpectedly",
                        transient=True,
                    )
                # Supervised stateless dispatch: route to the slot's current
                # worker.  It may itself be dead (not yet repaired) -- the
                # liveness pass then fails the future as transient and the
                # corpus driver resubmits.
                worker = current
            request_id = next(self._request_ids)
            self._futures[request_id] = (future, worker)
            worker.outstanding.add(request_id)
        worker.tasks.put(build_command(request_id))
        return future

    def submit_document(self, name: str, payload):
        """Queue one document; returns a Future of the worker triple.

        Documents go to the worker with the fewest outstanding tasks, so a
        skewed corpus (one huge document) does not idle the other workers.
        """
        with self._lock:
            worker = min(self._workers, key=lambda w: len(w.outstanding))
        if self._supervise and not worker.process.is_alive():
            # Repair eagerly instead of queueing onto a corpse.
            self._check_liveness()
            with self._lock:
                worker = min(self._workers, key=lambda w: len(w.outstanding))
        return self._dispatch(
            worker, lambda request_id: (_DOC, request_id, name, payload)
        )

    def open_session(self, *, binary: bool = True) -> "RemoteSession":
        """Open a streaming filter session inside the least-loaded worker."""
        if self._supervise:
            with self._lock:
                repair = any(
                    not worker.process.is_alive() for worker in self._workers
                )
            if repair:
                self._check_liveness()
        with self._lock:
            worker = min(self._workers, key=lambda w: w.sessions)
            worker.sessions += 1
            session_id = next(self._session_ids)
        try:
            future = self._dispatch(
                worker,
                lambda request_id: (_OPEN, request_id, session_id, binary),
            )
            future.result()
        except BaseException:
            # A failed open must not skew least-loaded routing forever.
            with self._lock:
                worker.sessions -= 1
            raise
        return RemoteSession(self, worker, session_id, self.spec.labels)

    def abandon(self, future) -> bool:
        """Kill the worker holding ``future``'s request (deadline expiry).

        The worker is presumed hung, so it is SIGKILLed outright; the
        liveness pass fails its in-flight futures with a transient error
        and (under supervision) spawns a replacement into the slot.
        Returns ``False`` when the future was no longer in flight --
        i.e. it completed in the race window and nothing was killed.
        """
        with self._lock:
            worker = None
            for entry in self._futures.values():
                if entry[0] is future:
                    worker = entry[1]
                    break
        if worker is None:
            return False
        process = worker.process
        if process.is_alive():
            process.kill()
            process.join(timeout=_KILL_GRACE)
        self._check_liveness()
        return True

    # ------------------------------------------------------------------
    # Result collection
    # ------------------------------------------------------------------
    def _collect(self) -> None:
        while True:
            try:
                message = self._results.get(timeout=0.2)
            except queue.Empty:
                if self._check_liveness():
                    return
                continue
            if message is None:
                return
            request_id, ok, value = message
            with self._lock:
                entry = self._futures.pop(request_id, None)
                if entry is not None:
                    entry[1].outstanding.discard(request_id)
            if entry is None:
                continue
            future = entry[0]
            if ok:
                future.set_result(value)
            else:
                future.set_exception(_worker_error(value))

    def _check_liveness(self) -> bool:
        """Repair dead workers; returns True when collection is done.

        A dead worker's in-flight futures fail with a *transient*
        :class:`ParallelExecutionError` (the task may simply not have been
        attempted); under supervision a replacement process is spawned into
        the slot so pool capacity is restored.  The dead worker's task
        queue is retired, not closed: a racing dispatch may still hold a
        reference, and its items are abandoned with the dead worker anyway
        (every affected future is failed here).
        """
        with self._lock:
            if self._closed and not self._futures:
                return True
            dead: list[tuple] = []
            for slot, worker in enumerate(self._workers):
                if worker.process.is_alive():
                    continue
                for request_id in list(worker.outstanding):
                    entry = self._futures.pop(request_id, None)
                    if entry is not None:
                        dead.append((entry[0], worker.identifier))
                worker.outstanding.clear()
                if self._supervise and not self._closed:
                    self._retired_queues.append(worker.tasks)
                    self._workers[slot] = self._spawn(worker.identifier)
        for future, identifier in dead:
            future.set_exception(ParallelExecutionError(
                f"worker {identifier} died before finishing its task "
                "(killed or crashed hard)",
                transient=True,
            ))
        return False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drain and stop the workers (waits for queued tasks to finish).

        Workers get the shutdown sentinel and ``shutdown_timeout`` seconds
        to drain; whatever is still alive is escalated ``terminate()`` →
        ``kill()``, so a hung worker (a blocked ``feed``, a masked
        ``SIGTERM``) can delay shutdown but never prevent it.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for worker in self._workers:
            worker.tasks.put(None)
        self._escalate(self._shutdown_timeout)
        self._results.put(None)
        self._collector.join(timeout=5)
        self._fail_outstanding("the worker pool was closed")
        self._release_queues()

    def terminate(self) -> None:
        """Kill the workers immediately (queued tasks are abandoned).

        ``terminate()`` (SIGTERM) is escalated to ``kill()`` (SIGKILL) for
        any worker that does not exit within the shutdown timeout.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._escalate(0.0)
        self._results.put(None)
        self._collector.join(timeout=5)
        self._fail_outstanding("the worker pool was terminated")
        self._release_queues()

    def _escalate(self, join_timeout: float) -> None:
        """``join(timeout)`` → ``terminate()`` → ``kill()`` the workers."""
        if join_timeout > 0:
            deadline = time.monotonic() + join_timeout
            for worker in self._workers:
                remaining = deadline - time.monotonic()
                worker.process.join(timeout=max(0.0, remaining))
        stubborn = [w for w in self._workers if w.process.is_alive()]
        for worker in stubborn:
            worker.process.terminate()
        grace = min(self._shutdown_timeout, _KILL_GRACE)
        deadline = time.monotonic() + max(0.1, grace)
        for worker in stubborn:
            remaining = deadline - time.monotonic()
            worker.process.join(timeout=max(0.0, remaining))
        hardened = [w for w in stubborn if w.process.is_alive()]
        for worker in hardened:
            worker.process.kill()
        for worker in hardened:
            worker.process.join(timeout=_KILL_GRACE)

    def _release_queues(self) -> None:
        """Close the queues without joining their feeder threads.

        A task queue may still buffer items whose worker is gone (a killed
        pool, a crashed worker); its feeder thread then blocks forever on
        the full pipe, and the default exit-time ``join_thread`` would hang
        interpreter shutdown on it.  The data is intentionally abandoned --
        every affected future was already failed.
        """
        for tasks in self._retired_queues:
            tasks.close()
            tasks.cancel_join_thread()
        self._retired_queues.clear()
        for worker in self._workers:
            worker.tasks.close()
            worker.tasks.cancel_join_thread()
        self._results.close()
        self._results.cancel_join_thread()

    def _fail_outstanding(self, reason: str) -> None:
        with self._lock:
            entries = list(self._futures.values())
            self._futures.clear()
            for worker in self._workers:
                worker.outstanding.clear()
        for future, _worker in entries:
            if not future.done():
                future.set_exception(ParallelExecutionError(reason))

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, exc_type, *exc_info) -> None:
        if exc_type is None:
            self.close()
        else:
            self.terminate()


# ----------------------------------------------------------------------
# Remote streaming sessions (the serving bridge's worker mode)
# ----------------------------------------------------------------------
class RemoteSession:
    """A filter session running inside a worker process.

    ``feed``/``finish`` block until the worker replied (dispatch them
    through ``run_in_executor`` from asyncio); commands of one session are
    routed to one worker in order, so per-session output ordering is
    exactly that of an in-process session.
    """

    def __init__(self, pool: WorkerPool, worker: _Worker, session_id: int,
                 labels: list[str]) -> None:
        self._pool = pool
        self._worker = worker
        self._session_id = session_id
        self.labels = list(labels)
        self._open = True

    def feed(self, chunk) -> list:
        """Process one chunk in the worker; returns per-query new output."""
        chunk = bytes(chunk) if isinstance(chunk, (bytearray, memoryview)) \
            else chunk
        future = self._pool._dispatch(
            self._worker,
            lambda request_id: (_FEED, request_id, self._session_id, chunk),
            sticky=True,
        )
        return future.result()

    def finish(self) -> list:
        """Finish in the worker; returns the remaining per-query output."""
        future = self._pool._dispatch(
            self._worker,
            lambda request_id: (_FINISH, request_id, self._session_id),
            sticky=True,
        )
        outputs, self.stats, self.scan_stats = future.result()
        self._open = False
        with self._pool._lock:
            self._worker.sessions -= 1
        return outputs

    def close(self) -> None:
        """Drop the worker-side session (idempotent; no reply expected)."""
        if not self._open:
            return
        self._open = False
        with self._pool._lock:
            self._worker.sessions -= 1
            closed = self._pool._closed
        if not closed and self._worker.process.is_alive():
            self._worker.tasks.put((_CLOSE, self._session_id))


# ----------------------------------------------------------------------
# Corpus execution
# ----------------------------------------------------------------------
_ON_ERROR_POLICIES = ("raise", "skip", "collect")


def _check_on_error(on_error: str) -> None:
    if on_error not in _ON_ERROR_POLICIES:
        raise QueryError(
            f"on_error must be one of {_ON_ERROR_POLICIES}, got {on_error!r}"
        )


def execute_corpus(
    engine,
    documents: Iterable[tuple[str, tuple]],
    *,
    jobs: int,
    pool: WorkerPool | None = None,
    retry: RetryPolicy | None = None,
    on_error: str = "raise",
    deadline: float | None = None,
) -> Iterator[DocumentOutcome]:
    """Shard ``documents`` across ``jobs`` workers; yield outcomes in order.

    ``documents`` yields ``(name, payload)`` work items (see
    ``Source.documents``).  Results are yielded strictly in corpus order --
    a late-finishing early document holds back later ones (the
    order-preserving merge) -- while submission stays ahead by a bounded
    in-flight window, so workers never idle waiting for the merge.

    Fault tolerance:

    ``retry``
        A :class:`~repro.core.sources.RetryPolicy`: a document whose
        failure is *transient* (its worker died, its deadline expired, or
        the underlying error is retryable I/O) is resubmitted after the
        policy's backoff, up to ``retry.retries`` times.  Resubmission
        happens at the head of the merge, so corpus order -- and therefore
        byte-identity with a sequential run -- is preserved.
    ``on_error``
        What to do with a document that (still) fails: ``"raise"`` aborts
        the run (the default, and the pre-fault-tolerance behavior);
        ``"skip"`` drops it silently; ``"collect"`` yields a
        :class:`DocumentOutcome` whose ``failure`` field quarantines the
        document (path, attempts, cause) while the run continues.
    ``deadline``
        Per-document wall-clock budget in seconds.  An expired document's
        worker is presumed hung and killed (SIGKILL -- it may be ignoring
        ``SIGTERM``), the slot is respawned, and the document is treated
        as a transient failure (so ``retry`` applies).  Ignored by the
        in-process ``jobs=1`` path, which has no worker to kill.

    ``jobs=1`` (without an explicit ``pool``) runs everything in-process:
    no worker processes, no pickling -- the sequential baseline with the
    same merge semantics.  A failing document raises
    :class:`ParallelExecutionError` naming it, whatever the mode.
    """
    _check_on_error(on_error)
    if pool is None and jobs <= 1:
        yield from _execute_in_process(
            engine, documents, retry=retry, on_error=on_error
        )
        return
    owned = pool is None
    if owned:
        pool = WorkerPool(engine, jobs)
    try:
        # Entries are [index, name, payload, future, attempts]; the payload
        # is kept so a transient failure can be resubmitted.
        pending: deque[list] = deque()
        limit = max(2, pool.jobs * _PENDING_PER_WORKER)
        iterator = enumerate(documents)
        exhausted = False
        while True:
            while not exhausted and len(pending) < limit:
                try:
                    index, (name, payload) = next(iterator)
                except StopIteration:
                    exhausted = True
                    break
                pending.append(
                    [index, name, payload,
                     pool.submit_document(name, payload), 1]
                )
            if not pending:
                break
            entry = pending.popleft()
            index, name, payload = entry[0], entry[1], entry[2]
            outcome = error = None
            while True:
                try:
                    outputs, stats, scan_stats = entry[3].result(
                        timeout=deadline
                    )
                    outcome = DocumentOutcome(
                        index=index, name=name, outputs=outputs,
                        stats=stats, scan_stats=scan_stats,
                    )
                    break
                except concurrent.futures.TimeoutError:
                    if not pool.abandon(entry[3]) and entry[3].done():
                        continue  # completed in the race window
                    error = ParallelExecutionError(
                        f"document {name!r} exceeded the {deadline} s "
                        "deadline (worker killed)",
                        document=name,
                        transient=True,
                    )
                except ParallelExecutionError as failure:
                    error = failure
                if (error.transient and retry is not None
                        and entry[4] <= retry.retries):
                    time.sleep(retry.delay(entry[4]))
                    entry[4] += 1
                    try:
                        entry[3] = pool.submit_document(name, payload)
                    except ParallelExecutionError as failure:
                        error = failure
                        break
                    continue
                break
            if outcome is not None:
                yield outcome
                continue
            error.attempts = entry[4]
            if on_error == "raise":
                if error.document is None:
                    error.document = name
                raise _named(error, name) from error.original
            if on_error == "collect":
                yield DocumentOutcome(
                    index=index, name=name, outputs=[], stats=[],
                    failure=DocumentFailure(
                        index=index, name=name, attempts=entry[4],
                        error=_named(error, name),
                    ),
                )
    except BaseException:
        # Errors and abandoned iteration must not wait for the queued rest
        # of the corpus; an owned pool is killed, a borrowed one is the
        # caller's to manage.
        if owned:
            pool.terminate()
        raise
    else:
        if owned:
            pool.close()


def _named(error: ParallelExecutionError, name: str) -> ParallelExecutionError:
    """The pool error re-raised with the failing document named."""
    if name in str(error):
        return error
    renamed = ParallelExecutionError(
        f"filtering {name!r} failed: {error.original or error}",
        document=name,
        original=error.original,
        worker_traceback=error.worker_traceback,
        transient=error.transient,
        attempts=error.attempts,
    )
    return renamed


def _execute_in_process(
    engine,
    documents,
    *,
    retry: RetryPolicy | None = None,
    on_error: str = "raise",
) -> Iterator[DocumentOutcome]:
    """The ``jobs=1`` fallback: same semantics, current process, no pickling."""
    _check_on_error(on_error)
    if isinstance(engine, EngineSpec):
        built = engine.build()
    elif engine.mode == "parallel":
        # A parallel-mode engine has no per-document sessions of its own;
        # rebuild it in an executable mode (plans come from the cache).
        built = EngineSpec.from_engine(engine).build()
    else:
        # The caller's engine already holds compiled plans: use it as is.
        built = engine
    pools: dict[int, BufferPool] = {}
    for index, (name, payload) in enumerate(documents):
        attempts = 1
        while True:
            try:
                outputs, stats, scan_stats = _run_document(
                    built, payload, pools
                )
                outcome = DocumentOutcome(
                    index=index, name=name, outputs=outputs, stats=stats,
                    scan_stats=scan_stats,
                )
                error = None
                break
            except Exception as raw:
                if (is_transient(raw) and retry is not None
                        and attempts <= retry.retries):
                    time.sleep(retry.delay(attempts))
                    attempts += 1
                    continue
                outcome = None
                if isinstance(raw, ParallelExecutionError):
                    error = raw
                else:
                    error = ParallelExecutionError(
                        f"filtering {name!r} failed: {raw}",
                        document=name,
                        original=raw,
                        transient=is_transient(raw),
                        attempts=attempts,
                    )
                    error.__cause__ = raw
                break
        if outcome is not None:
            yield outcome
            continue
        error.attempts = attempts
        if on_error == "raise":
            raise error from error.original
        if on_error == "collect":
            yield DocumentOutcome(
                index=index, name=name, outputs=[], stats=[],
                failure=DocumentFailure(
                    index=index, name=name, attempts=attempts, error=error,
                ),
            )
