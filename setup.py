"""Setuptools shim.

The project is fully described by ``pyproject.toml``; this file exists so the
package can also be installed on minimal environments whose setuptools lacks
PEP 660 editable-wheel support (``pip install -e . --no-build-isolation`` or
``python setup.py develop``).
"""

from setuptools import setup

setup()
