"""Build script for the repro package (src layout).

All packaging configuration lives here -- there is no ``pyproject.toml``.
The ``repro._accel`` C extension is **optional**: it accelerates the SMP
prefilter hot kernels (see ``src/repro/_accel.c``) but every code path has a
pure-Python fallback, so a failed compile must not fail the install.  The
``optional`` flag plus the forgiving ``build_ext`` below downgrade compiler
errors to a warning.
"""

from setuptools import Extension, find_packages, setup
from setuptools.command.build_ext import build_ext


class optional_build_ext(build_ext):
    """Best-effort build: a missing or broken compiler is not fatal."""

    def run(self):
        try:
            super().run()
        except Exception as exc:  # pragma: no cover - compiler-dependent
            self._warn(exc)

    def build_extension(self, ext):
        try:
            super().build_extension(ext)
        except Exception as exc:  # pragma: no cover - compiler-dependent
            self._warn(exc)

    @staticmethod
    def _warn(exc):
        import warnings

        warnings.warn(
            "repro._accel failed to build (%s); continuing with the "
            "pure-Python hot paths" % (exc,)
        )


setup(
    name="repro-smp-prefilter",
    version="0.7.0",
    description=(
        "Reproduction of streaming XML prefiltering via string matching "
        "(Koch, Scherzinger, Schweikardt; ICDE 2008)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.11",
    ext_modules=[
        Extension(
            "repro._accel",
            sources=["src/repro/_accel.c"],
            optional=True,
        )
    ],
    cmdclass={"build_ext": optional_build_ext},
)
